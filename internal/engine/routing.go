package engine

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
)

// routeOpts carries routing context through retries. It travels by value
// inside delivery records; record fields are the only mutation point on the
// delivery path (runRec and the helpers below never write through shared
// state to adjust a route in flight).
type routeOpts struct {
	alg    int
	origin MSSID // MSS that initiated the routed send (receives failures)
	cat    cost.Category
	// hops counts wireless delivery attempts so far: each stale re-route
	// after the destination moved in flight adds one. Observability only
	// (the EvDeliver event and the chase-hop histogram); never charged.
	hops int32
	// pair/seq implement the per-(MH,MH)-pair FIFO reorder buffer when the
	// final destination delivery came from SendMHToMH. hasPair marks the
	// pair key as set (the zero pairKey is a valid pair).
	pair    pairKey
	hasPair bool
	seq     uint64
}

type pairKey struct {
	from, to MHID
}

// pairState is the per-ordered-pair FIFO reorder buffer.
type pairState struct {
	nextSeq     uint64
	nextDeliver uint64
	buffer      map[uint64]deferredDelivery
}

type deferredDelivery struct {
	alg int
	msg Message
}

func (e *Engine) pairState(key pairKey) *pairState {
	ps, ok := e.pairs[key]
	if !ok {
		ps = &pairState{buffer: make(map[uint64]deferredDelivery)}
		e.pairs[key] = ps
	}
	return ps
}

// sendFixed transmits msg on the wired network. Self-sends are allowed and
// charged, matching the paper's unconditional Cfixed terms.
func (e *Engine) sendFixed(alg int, from, to MSSID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMSS(to)
	e.meter.Charge(cat, cost.KindFixed)
	rec := e.newRec(opDispatchMSS)
	rec.mss = to
	rec.from = From{MSS: from}
	rec.msg = msg
	rec.opts.alg = alg
	e.transmitWired(from, to, rec)
}

// broadcastFixed sends msg from from to every other MSS.
func (e *Engine) broadcastFixed(alg int, from MSSID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	for i := 0; i < e.cfg.M; i++ {
		if MSSID(i) == from {
			continue
		}
		e.sendFixed(alg, from, MSSID(i), msg, cat)
	}
}

// sendToLocalMH delivers over the local wireless channel only.
func (e *Engine) sendToLocalMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) error {
	e.checkMSS(from)
	e.checkMH(mh)
	if !e.mss[from].local.has(mh) {
		return fmt.Errorf("engine: mh%d is not local to mss%d", int(mh), int(from))
	}
	e.wirelessDown(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat})
	return nil
}

// sendToMH routes msg to mh, searching as needed.
func (e *Engine) sendToMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMH(mh)
	e.routeToMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMH implements delivery with search and retry-across-moves. via is
// the MSS currently holding the message. stale marks retries caused by the
// destination moving while the message was in flight; their search charges
// go to cost.CatStale so the primary accounting matches the paper's
// footnote-2 assumption.
func (e *Engine) routeToMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &e.mh[mh]
	switch st.status {
	case StatusInTransit:
		// The model guarantees the MH eventually joins some cell; park the
		// message until it does, then retry. No charge is incurred for
		// waiting.
		rec := e.newRec(opRouteResume)
		rec.mss = via
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		rec.stale = stale
		e.addWaiter(mh, rec)
		return

	case StatusDisconnected:
		// The MSS of the cell where the MH disconnected informs the
		// searcher of its status (Section 2). The search that discovered
		// this is charged; the notification is control traffic. With a
		// custody hook bound, the MSS holding the disconnected flag may
		// instead take custody for store-carry-forward delivery; the
		// handover is control traffic like the notification it replaces.
		holder := st.at
		e.chargeSearch(opts, stale)
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		if e.custody != nil && e.custody.OfferCustody(holder, mh, msg, CustodyRef{opts: opts}) {
			return
		}
		// The message will never deliver: free its pair sequence slot
		// now, at send time — the origin may itself be crashed and the
		// notification discarded in flight, and pair state is global
		// engine state, not something the origin must hear about.
		e.skipPairSeq(opts)
		rec := e.newRec(opNotifyFailure)
		rec.mss = opts.origin
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		e.transmitWired(holder, opts.origin, rec)
		return

	case StatusConnected:
		target := st.at
		if target == via {
			// Local delivery. Under the paper's pessimistic assumption every
			// routed delivery to a MH still incurs the fixed search cost.
			if e.cfg.PessimisticSearch && e.cfg.SearchMode == SearchAbstract {
				e.chargeSearch(opts, stale)
			}
			e.wirelessDown(via, mh, msg, opts)
			return
		}
		e.chargeSearch(opts, stale)
		rec := e.newRec(opRouteArrive)
		rec.mss = target
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		e.transmitWired(via, target, rec)
		return

	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// reclassifyWastedWireless moves one wireless charge from cat to the stale
// account after the prefix rule discarded the transmission.
func (e *Engine) reclassifyWastedWireless(cat cost.Category) {
	if cat == cost.CatStale {
		return
	}
	e.meter.ChargeN(cat, cost.KindWireless, -1)
	e.meter.Charge(cost.CatStale, cost.KindWireless)
}

// chargeSearch records one search under the configured search mode.
func (e *Engine) chargeSearch(opts routeOpts, stale bool) {
	e.stats.Searches++
	if e.cfg.Trace != nil {
		e.trace("search", "origin mss%d (stale=%v)", int(opts.origin), stale)
	}
	e.event(obs.EvSearch, int32(opts.origin), boolOperand(stale), 0)
	cat := opts.cat
	if stale {
		cat = cost.CatStale
	}
	switch e.cfg.SearchMode {
	case SearchAbstract:
		e.meter.Charge(cat, cost.KindSearch)
	case SearchBroadcast:
		// Query every other MSS, one reply from the hosting MSS, one
		// forward of the payload. Message counts are charged here; the
		// wired legs' latency is already modelled by the forward hop in
		// routeToMH (queries proceed in parallel with it).
		e.meter.ChargeN(cat, cost.KindFixed, int64(e.cfg.M-1))
		e.meter.ChargeN(cat, cost.KindFixed, 2)
	default:
		panic(fmt.Sprintf("engine: unknown search mode %d", int(e.cfg.SearchMode)))
	}
}

// wirelessDown transmits msg from mss to mh over the cell's wireless
// channel. Prefix semantics: if the MH left the cell (or disconnected)
// before the transmission completes, the message is not delivered there; it
// is re-routed (or a failure is reported). The delivery-time check is
// downArrive.
func (e *Engine) wirelessDown(mss MSSID, mh MHID, msg Message, opts routeOpts) {
	e.meter.Charge(opts.cat, cost.KindWireless)
	rec := e.newRec(opDownArrive)
	rec.mss = mss
	rec.mh = mh
	rec.msg = msg
	rec.opts = opts
	e.transmitDown(mss, mh, rec)
}

// downArrive completes a wireless downlink transmission: the opDownArrive
// interpreter case. rec stays owned by the caller (StepRec frees it, or the
// ARQ sender queue holds it until acked); any mutation happens on rec's own
// fields before the route continues through fresh records.
func (e *Engine) downArrive(rec *DeliveryRec) {
	mss, mh := rec.mss, rec.mh
	st := &e.mh[mh]
	if st.status == StatusConnected && st.at == mss {
		e.meter.WirelessRx(int(mh))
		if st.dozing {
			e.stats.DozeInterruptions++
			e.stats.DozeInterruptionsByMH[mh]++
		}
		e.event(obs.EvDeliver, int32(mh), int32(mss), rec.opts.hops+1)
		e.deliverToMH(mh, rec.msg, rec.opts)
		return
	}
	if st.status == StatusDisconnected && st.at == mss {
		// Disconnected in this very cell before the transmission
		// completed: the transmission was wasted (reclassified as
		// stale) and the local MSS notifies the sender — or, with a
		// custody hook bound, keeps the message for store-carry-forward.
		e.reclassifyWastedWireless(rec.opts.cat)
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		if e.custody != nil && e.custody.OfferCustody(mss, mh, rec.msg, CustodyRef{opts: rec.opts}) {
			return
		}
		// Tombstone at send time (see routeToMH): the notification may
		// never reach a crashed origin.
		e.skipPairSeq(rec.opts)
		fail := e.newRec(opNotifyFailure)
		fail.mss = rec.opts.origin
		fail.mh = mh
		fail.msg = rec.msg
		fail.opts = rec.opts
		e.transmitWired(mss, rec.opts.origin, fail)
		return
	}
	// Left the cell: the wireless message fell outside the received
	// prefix (Section 2). The wasted transmission moves to the stale
	// account (the paper's footnote-2 "second copy" case) and the
	// message is routed onwards from here; the eventual successful
	// delivery stays in the primary category, so primary accounting
	// charges exactly one delivery per message.
	e.reclassifyWastedWireless(rec.opts.cat)
	e.stats.StaleReroutes++
	rec.opts.hops++
	e.routeToMH(mss, mh, rec.msg, rec.opts, true)
}

// deliverToMH hands msg to the destination's handler, applying the
// per-pair reorder buffer for MH-to-MH traffic.
func (e *Engine) deliverToMH(mh MHID, msg Message, opts routeOpts) {
	if !opts.hasPair {
		e.dispatchMH(opts.alg, mh, msg)
		return
	}
	ps := e.pairState(opts.pair)
	ps.buffer[opts.seq] = deferredDelivery{alg: opts.alg, msg: msg}
	e.drainPair(opts.pair, ps)
}

// drainPair delivers the in-order prefix of a pair's reorder buffer.
// Entries with alg < 0 are tombstones left by skipPairSeq for sequence
// numbers that will never deliver (failed, expired, or dropped sends):
// they advance the delivery cursor without dispatching.
func (e *Engine) drainPair(key pairKey, ps *pairState) {
	for {
		d, ok := ps.buffer[ps.nextDeliver]
		if !ok {
			break
		}
		delete(ps.buffer, ps.nextDeliver)
		ps.nextDeliver++
		if d.alg < 0 {
			continue
		}
		e.dispatchMH(d.alg, key.to, d.msg)
	}
}

// skipPairSeq tombstones a pair sequence number whose message will never
// be delivered, so the reorder buffer does not wedge every later message
// of the pair behind the hole. No-op for unpaired traffic.
func (e *Engine) skipPairSeq(opts routeOpts) {
	if !opts.hasPair {
		return
	}
	ps := e.pairState(opts.pair)
	ps.buffer[opts.seq] = deferredDelivery{alg: -1}
	e.drainPair(opts.pair, ps)
}

// sendFromMH transmits msg from mh to its current local MSS. Sends from a
// MH in transit are deferred until it joins a cell (it "neither sends nor
// receives" between cells).
func (e *Engine) sendFromMH(alg int, mh MHID, msg Message, cat cost.Category) error {
	e.checkMH(mh)
	st := &e.mh[mh]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(mh))
	case StatusInTransit:
		rec := e.newRec(opSendFromMH)
		rec.mh = mh
		rec.msg = msg
		rec.opts.alg = alg
		rec.opts.cat = cat
		e.addWaiter(mh, rec)
		return nil
	case StatusConnected:
		at := st.at
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(mh))
		// The message was transmitted before any subsequent leave(), so
		// the MSS of the cell it was sent in processes it.
		rec := e.newRec(opDispatchMSS)
		rec.mss = at
		rec.from = From{MH: mh, IsMH: true}
		rec.msg = msg
		rec.opts.alg = alg
		e.transmitUp(mh, rec)
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// forwardViaMSS routes msg to MH `to` through the MSS a directory names:
// one fixed hop (charged unconditionally) then the wireless downlink. A
// stale directory entry falls back to a search charged to cost.CatStale
// (the opRouteArrive re-check at the named MSS).
func (e *Engine) forwardViaMSS(origin, via MSSID, to MHID, msg Message, opts routeOpts) {
	e.meter.Charge(opts.cat, cost.KindFixed)
	rec := e.newRec(opRouteArrive)
	rec.mss = via
	rec.mh = to
	rec.msg = msg
	rec.opts = opts
	e.transmitWired(origin, via, rec)
}

// sendToMHVia implements directory-routed MSS-to-MH messaging (a fixed
// proxy reaching its mobile host, Section 5).
func (e *Engine) sendToMHVia(alg int, from, via MSSID, to MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMSS(via)
	e.checkMH(to)
	e.forwardViaMSS(from, via, to, msg, routeOpts{alg: alg, origin: from, cat: cat})
}

// sendMHViaMSS implements directory-routed MH-to-MH messaging: the sender
// believes `to` is located at `via` and routes there directly, with one
// fixed hop charged unconditionally (Section 4.2's 2·Cwireless + Cfixed per
// member). A stale directory entry falls back to a search charged to
// cost.CatStale.
func (e *Engine) sendMHViaMSS(alg int, from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error {
	e.checkMH(from)
	e.checkMSS(via)
	e.checkMH(to)
	st := &e.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		rec := e.newRec(opSendMHViaMSS)
		rec.mh = from
		rec.mss = via
		rec.mh2 = to
		rec.msg = msg
		rec.opts.alg = alg
		rec.opts.cat = cat
		e.addWaiter(from, rec)
		return nil
	case StatusConnected:
		at := st.at
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(from))
		rec := e.newRec(opUpForwardVia)
		rec.mss = via
		rec.mh = to
		rec.msg = msg
		rec.opts = routeOpts{alg: alg, origin: at, cat: cat}
		e.transmitUp(from, rec)
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(from), int(st.status)))
	}
}

// sendToMSSOfMH locates mh and delivers msg to the MSS currently serving it
// — the operation the paper prices at Csearch. If mh has disconnected the
// sender is notified via DeliveryFailureHandler.
func (e *Engine) sendToMSSOfMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMH(mh)
	e.routeToMSSOfMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMSSOfMH is routeToMH with the MSS itself as the final recipient.
func (e *Engine) routeToMSSOfMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &e.mh[mh]
	switch st.status {
	case StatusInTransit:
		rec := e.newRec(opRouteMSSResume)
		rec.mss = via
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		rec.stale = stale
		e.addWaiter(mh, rec)
		return

	case StatusDisconnected:
		holder := st.at
		e.chargeSearch(opts, stale)
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		// Tombstone at send time (see routeToMH); a no-op here since
		// MSS-destined traffic never carries a pair sequence.
		e.skipPairSeq(opts)
		rec := e.newRec(opNotifyFailure)
		rec.mss = opts.origin
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		e.transmitWired(holder, opts.origin, rec)
		return

	case StatusConnected:
		target := st.at
		if target == via {
			if e.cfg.PessimisticSearch && e.cfg.SearchMode == SearchAbstract {
				e.chargeSearch(opts, stale)
			}
			rec := e.newRec(opDispatchMSS)
			rec.mss = target
			rec.from = From{MSS: opts.origin}
			rec.msg = msg
			rec.opts.alg = opts.alg
			e.sub.EnqueueRec(rec)
			return
		}
		e.chargeSearch(opts, stale)
		rec := e.newRec(opRouteMSSArrive)
		rec.mss = target
		rec.mh = mh
		rec.msg = msg
		rec.opts = opts
		e.transmitWired(via, target, rec)
		return

	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// sendMHToMH implements MH-to-MH messaging: wireless uplink, routed
// forwarding with search, wireless downlink, with per-ordered-pair FIFO
// delivery.
func (e *Engine) sendMHToMH(alg int, from, to MHID, msg Message, cat cost.Category) error {
	e.checkMH(from)
	e.checkMH(to)
	st := &e.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		rec := e.newRec(opSendMHToMH)
		rec.mh = from
		rec.mh2 = to
		rec.msg = msg
		rec.opts.alg = alg
		rec.opts.cat = cat
		e.addWaiter(from, rec)
		return nil
	case StatusConnected:
		at := st.at
		key := pairKey{from: from, to: to}
		ps := e.pairState(key)
		seq := ps.nextSeq
		ps.nextSeq++
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(from))
		rec := e.newRec(opUpRoute)
		rec.mss = at
		rec.mh = to
		rec.msg = msg
		rec.opts = routeOpts{alg: alg, origin: at, cat: cat, pair: key, hasPair: true, seq: seq}
		e.transmitUp(from, rec)
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(from), int(st.status)))
	}
}
