package engine

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
)

// routeOpts carries routing context through retries.
type routeOpts struct {
	alg    int
	origin MSSID // MSS that initiated the routed send (receives failures)
	cat    cost.Category
	// hops counts wireless delivery attempts so far: each stale re-route
	// after the destination moved in flight adds one. Observability only
	// (the EvDeliver event and the chase-hop histogram); never charged.
	hops int32
	// pair/seq implement the per-(MH,MH)-pair FIFO reorder buffer when the
	// final destination delivery came from SendMHToMH.
	pair *pairKey
	seq  uint64
}

type pairKey struct {
	from, to MHID
}

// pairState is the per-ordered-pair FIFO reorder buffer.
type pairState struct {
	nextSeq     uint64
	nextDeliver uint64
	buffer      map[uint64]deferredDelivery
}

type deferredDelivery struct {
	alg int
	msg Message
}

func (e *Engine) pairState(key pairKey) *pairState {
	ps, ok := e.pairs[key]
	if !ok {
		ps = &pairState{buffer: make(map[uint64]deferredDelivery)}
		e.pairs[key] = ps
	}
	return ps
}

// sendFixed transmits msg on the wired network. Self-sends are allowed and
// charged, matching the paper's unconditional Cfixed terms.
func (e *Engine) sendFixed(alg int, from, to MSSID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMSS(to)
	e.meter.Charge(cat, cost.KindFixed)
	sender := From{MSS: from}
	e.transmitWired(from, to, func() {
		e.dispatchMSS(alg, to, sender, msg)
	})
}

// broadcastFixed sends msg from from to every other MSS.
func (e *Engine) broadcastFixed(alg int, from MSSID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	for i := 0; i < e.cfg.M; i++ {
		if MSSID(i) == from {
			continue
		}
		e.sendFixed(alg, from, MSSID(i), msg, cat)
	}
}

// sendToLocalMH delivers over the local wireless channel only.
func (e *Engine) sendToLocalMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) error {
	e.checkMSS(from)
	e.checkMH(mh)
	if !e.mss[from].local.has(mh) {
		return fmt.Errorf("engine: mh%d is not local to mss%d", int(mh), int(from))
	}
	e.wirelessDown(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat})
	return nil
}

// sendToMH routes msg to mh, searching as needed.
func (e *Engine) sendToMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMH(mh)
	e.routeToMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMH implements delivery with search and retry-across-moves. via is
// the MSS currently holding the message. stale marks retries caused by the
// destination moving while the message was in flight; their search charges
// go to cost.CatStale so the primary accounting matches the paper's
// footnote-2 assumption.
func (e *Engine) routeToMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &e.mh[mh]
	switch st.status {
	case StatusInTransit:
		// The model guarantees the MH eventually joins some cell; park the
		// message until it does, then retry. No charge is incurred for
		// waiting.
		e.addWaiter(mh, func() {
			e.routeToMH(via, mh, msg, opts, stale)
		})
		return

	case StatusDisconnected:
		// The MSS of the cell where the MH disconnected informs the
		// searcher of its status (Section 2). The search that discovered
		// this is charged; the notification is control traffic.
		holder := st.at
		e.chargeSearch(opts, stale)
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		e.transmitWired(holder, opts.origin, func() {
			e.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
		})
		return

	case StatusConnected:
		target := st.at
		if target == via {
			// Local delivery. Under the paper's pessimistic assumption every
			// routed delivery to a MH still incurs the fixed search cost.
			if e.cfg.PessimisticSearch && e.cfg.SearchMode == SearchAbstract {
				e.chargeSearch(opts, stale)
			}
			e.wirelessDown(via, mh, msg, opts)
			return
		}
		e.chargeSearch(opts, stale)
		e.transmitWired(via, target, func() {
			// Re-check on arrival: the MH may have moved on while the
			// message crossed the wired network.
			cur := &e.mh[mh]
			if cur.status == StatusConnected && cur.at == target {
				e.wirelessDown(target, mh, msg, opts)
				return
			}
			e.stats.StaleReroutes++
			e.routeToMH(target, mh, msg, opts, true)
		})
		return

	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// reclassifyWastedWireless moves one wireless charge from cat to the stale
// account after the prefix rule discarded the transmission.
func (e *Engine) reclassifyWastedWireless(cat cost.Category) {
	if cat == cost.CatStale {
		return
	}
	e.meter.ChargeN(cat, cost.KindWireless, -1)
	e.meter.Charge(cost.CatStale, cost.KindWireless)
}

// chargeSearch records one search under the configured search mode.
func (e *Engine) chargeSearch(opts routeOpts, stale bool) {
	e.stats.Searches++
	if e.cfg.Trace != nil {
		e.trace("search", "origin mss%d (stale=%v)", int(opts.origin), stale)
	}
	e.event(obs.EvSearch, int32(opts.origin), boolOperand(stale), 0)
	cat := opts.cat
	if stale {
		cat = cost.CatStale
	}
	switch e.cfg.SearchMode {
	case SearchAbstract:
		e.meter.Charge(cat, cost.KindSearch)
	case SearchBroadcast:
		// Query every other MSS, one reply from the hosting MSS, one
		// forward of the payload. Message counts are charged here; the
		// wired legs' latency is already modelled by the forward hop in
		// routeToMH (queries proceed in parallel with it).
		e.meter.ChargeN(cat, cost.KindFixed, int64(e.cfg.M-1))
		e.meter.ChargeN(cat, cost.KindFixed, 2)
	default:
		panic(fmt.Sprintf("engine: unknown search mode %d", int(e.cfg.SearchMode)))
	}
}

// wirelessDown transmits msg from mss to mh over the cell's wireless
// channel. Prefix semantics: if the MH left the cell (or disconnected)
// before the transmission completes, the message is not delivered there; it
// is re-routed (or a failure is reported).
func (e *Engine) wirelessDown(mss MSSID, mh MHID, msg Message, opts routeOpts) {
	e.meter.Charge(opts.cat, cost.KindWireless)
	e.transmitDown(mss, mh, func() {
		st := &e.mh[mh]
		if st.status == StatusConnected && st.at == mss {
			e.meter.WirelessRx(int(mh))
			if st.dozing {
				e.stats.DozeInterruptions++
				e.stats.DozeInterruptionsByMH[mh]++
			}
			e.event(obs.EvDeliver, int32(mh), int32(mss), opts.hops+1)
			e.deliverToMH(mh, msg, opts)
			return
		}
		if st.status == StatusDisconnected && st.at == mss {
			// Disconnected in this very cell before the transmission
			// completed: the transmission was wasted (reclassified as
			// stale) and the local MSS notifies the sender.
			e.reclassifyWastedWireless(opts.cat)
			e.meter.Charge(cost.CatControl, cost.KindFixed)
			e.transmitWired(mss, opts.origin, func() {
				e.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
			})
			return
		}
		// Left the cell: the wireless message fell outside the received
		// prefix (Section 2). The wasted transmission moves to the stale
		// account (the paper's footnote-2 "second copy" case) and the
		// message is routed onwards from here; the eventual successful
		// delivery stays in the primary category, so primary accounting
		// charges exactly one delivery per message.
		//
		// opts must stay unmutated in this closure: a read-only capture is
		// copied into the closure object, where an assigned one costs a
		// second heap cell per transmission.
		e.reclassifyWastedWireless(opts.cat)
		e.stats.StaleReroutes++
		ropts := opts
		ropts.hops++
		e.routeToMH(mss, mh, msg, ropts, true)
	})
}

// deliverToMH hands msg to the destination's handler, applying the
// per-pair reorder buffer for MH-to-MH traffic.
func (e *Engine) deliverToMH(mh MHID, msg Message, opts routeOpts) {
	if opts.pair == nil {
		e.dispatchMH(opts.alg, mh, msg)
		return
	}
	ps := e.pairState(*opts.pair)
	ps.buffer[opts.seq] = deferredDelivery{alg: opts.alg, msg: msg}
	for {
		d, ok := ps.buffer[ps.nextDeliver]
		if !ok {
			break
		}
		delete(ps.buffer, ps.nextDeliver)
		ps.nextDeliver++
		e.dispatchMH(d.alg, mh, d.msg)
	}
}

// sendFromMH transmits msg from mh to its current local MSS. Sends from a
// MH in transit are deferred until it joins a cell (it "neither sends nor
// receives" between cells).
func (e *Engine) sendFromMH(alg int, mh MHID, msg Message, cat cost.Category) error {
	e.checkMH(mh)
	st := &e.mh[mh]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(mh))
	case StatusInTransit:
		e.addWaiter(mh, func() {
			if err := e.sendFromMH(alg, mh, msg, cat); err != nil {
				// The MH disconnected before the deferred send could run, so
				// the transmission never happened. The loss is counted in
				// FailedDeliveries rather than silently swallowed; no
				// DeliveryFailureHandler fires because there is no origin MSS
				// to notify — the message never left the MH.
				e.stats.FailedDeliveries++
				if e.cfg.Trace != nil {
					e.trace("send-dropped", "mh%d disconnected before deferred send", int(mh))
				}
			}
		})
		return nil
	case StatusConnected:
		at := st.at
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(mh))
		sender := From{MH: mh, IsMH: true}
		e.transmitUp(mh, func() {
			// The message was transmitted before any subsequent leave(), so
			// the MSS of the cell it was sent in processes it.
			e.dispatchMSS(alg, at, sender, msg)
		})
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// forwardViaMSS routes msg to MH `to` through the MSS a directory names:
// one fixed hop (charged unconditionally) then the wireless downlink. A
// stale directory entry falls back to a search charged to cost.CatStale.
func (e *Engine) forwardViaMSS(origin, via MSSID, to MHID, msg Message, opts routeOpts) {
	e.meter.Charge(opts.cat, cost.KindFixed)
	e.transmitWired(origin, via, func() {
		cur := &e.mh[to]
		if cur.status == StatusConnected && cur.at == via {
			e.wirelessDown(via, to, msg, opts)
			return
		}
		// Stale directory entry: the destination moved (or is moving, or
		// disconnected); fall back to a search.
		e.stats.StaleReroutes++
		e.routeToMH(via, to, msg, opts, true)
	})
}

// sendToMHVia implements directory-routed MSS-to-MH messaging (a fixed
// proxy reaching its mobile host, Section 5).
func (e *Engine) sendToMHVia(alg int, from, via MSSID, to MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMSS(via)
	e.checkMH(to)
	e.forwardViaMSS(from, via, to, msg, routeOpts{alg: alg, origin: from, cat: cat})
}

// sendMHViaMSS implements directory-routed MH-to-MH messaging: the sender
// believes `to` is located at `via` and routes there directly, with one
// fixed hop charged unconditionally (Section 4.2's 2·Cwireless + Cfixed per
// member). A stale directory entry falls back to a search charged to
// cost.CatStale.
func (e *Engine) sendMHViaMSS(alg int, from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error {
	e.checkMH(from)
	e.checkMSS(via)
	e.checkMH(to)
	st := &e.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		e.addWaiter(from, func() {
			_ = e.sendMHViaMSS(alg, from, via, to, msg, cat)
		})
		return nil
	case StatusConnected:
		at := st.at
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(from))
		opts := routeOpts{alg: alg, origin: at, cat: cat}
		e.transmitUp(from, func() {
			// One fixed hop to the directory's MSS, charged even when the
			// sender's own MSS is the target.
			e.forwardViaMSS(at, via, to, msg, opts)
		})
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(from), int(st.status)))
	}
}

// sendToMSSOfMH locates mh and delivers msg to the MSS currently serving it
// — the operation the paper prices at Csearch. If mh has disconnected the
// sender is notified via DeliveryFailureHandler.
func (e *Engine) sendToMSSOfMH(alg int, from MSSID, mh MHID, msg Message, cat cost.Category) {
	e.checkMSS(from)
	e.checkMH(mh)
	e.routeToMSSOfMH(from, mh, msg, routeOpts{alg: alg, origin: from, cat: cat}, false)
}

// routeToMSSOfMH is routeToMH with the MSS itself as the final recipient.
func (e *Engine) routeToMSSOfMH(via MSSID, mh MHID, msg Message, opts routeOpts, stale bool) {
	st := &e.mh[mh]
	switch st.status {
	case StatusInTransit:
		e.addWaiter(mh, func() {
			e.routeToMSSOfMH(via, mh, msg, opts, stale)
		})
		return

	case StatusDisconnected:
		holder := st.at
		e.chargeSearch(opts, stale)
		e.meter.Charge(cost.CatControl, cost.KindFixed)
		e.transmitWired(holder, opts.origin, func() {
			e.notifyFailure(opts.alg, opts.origin, mh, msg, FailDisconnected)
		})
		return

	case StatusConnected:
		target := st.at
		sender := From{MSS: opts.origin}
		if target == via {
			if e.cfg.PessimisticSearch && e.cfg.SearchMode == SearchAbstract {
				e.chargeSearch(opts, stale)
			}
			e.sub.Enqueue(func() {
				e.dispatchMSS(opts.alg, target, sender, msg)
			})
			return
		}
		e.chargeSearch(opts, stale)
		e.transmitWired(via, target, func() {
			cur := &e.mh[mh]
			if cur.status == StatusConnected && cur.at == target {
				e.dispatchMSS(opts.alg, target, sender, msg)
				return
			}
			e.stats.StaleReroutes++
			e.routeToMSSOfMH(target, mh, msg, opts, true)
		})
		return

	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(mh), int(st.status)))
	}
}

// sendMHToMH implements MH-to-MH messaging: wireless uplink, routed
// forwarding with search, wireless downlink, with per-ordered-pair FIFO
// delivery.
func (e *Engine) sendMHToMH(alg int, from, to MHID, msg Message, cat cost.Category) error {
	e.checkMH(from)
	e.checkMH(to)
	st := &e.mh[from]
	switch st.status {
	case StatusDisconnected:
		return fmt.Errorf("engine: mh%d is disconnected and cannot send", int(from))
	case StatusInTransit:
		e.addWaiter(from, func() {
			_ = e.sendMHToMH(alg, from, to, msg, cat)
		})
		return nil
	case StatusConnected:
		at := st.at
		key := pairKey{from: from, to: to}
		ps := e.pairState(key)
		seq := ps.nextSeq
		ps.nextSeq++
		e.meter.Charge(cat, cost.KindWireless)
		e.meter.WirelessTx(int(from))
		opts := routeOpts{alg: alg, origin: at, cat: cat, pair: &key, seq: seq}
		e.transmitUp(from, func() {
			e.routeToMH(at, to, msg, opts, false)
		})
		return nil
	default:
		panic(fmt.Sprintf("engine: mh%d in unknown status %d", int(from), int(st.status)))
	}
}
