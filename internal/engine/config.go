package engine

import (
	"fmt"

	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// Delay is an inclusive range of virtual-time latencies. Each transmission
// draws uniformly from the range; FIFO order per channel is preserved
// regardless of the draw.
type Delay struct {
	Min, Max sim.Time
}

// FixedDelay returns a degenerate range with a single value.
func FixedDelay(d sim.Time) Delay { return Delay{Min: d, Max: d} }

// Validate reports whether the range is usable, naming the range in errors.
func (d Delay) Validate(name string) error {
	if d.Min < 0 || d.Max < d.Min {
		return fmt.Errorf("engine: invalid %s delay range [%d,%d]", name, d.Min, d.Max)
	}
	return nil
}

// Config describes the substrate-independent parameters of a two-tier
// network: sizes, cost constants, link latency ranges, the search service,
// and initial placement. Substrate-specific knobs (the simulator's seed and
// step limit, the live runtime's tick) live in the adapters' configs.
type Config struct {
	// M is the number of mobile support stations (M >= 1).
	M int
	// N is the number of mobile hosts (N >= 1). The paper assumes N >> M but
	// the model does not require it.
	N int
	// Params are the message cost constants.
	Params cost.Params

	// Wired is the MSS-to-MSS latency range.
	Wired Delay
	// Wireless is the MH<->MSS latency range.
	Wireless Delay
	// Travel is how long a MH spends between leaving one cell and joining
	// the next.
	Travel Delay

	// SearchMode selects the search service (abstract Csearch vs broadcast).
	SearchMode SearchMode
	// PessimisticSearch, when true, charges Csearch on every routed delivery
	// to a MH even if it happens to still be local — the paper's "any
	// message destined for a mobile host incurs a fixed search cost"
	// assumption, under which the analytic expressions are exact. When
	// false, search is charged only for genuinely non-local destinations.
	PessimisticSearch bool

	// ReliableWireless interposes a stop-and-wait ARQ sublayer (per-channel
	// sequence numbers, ack/timeout/retransmit with capped exponential
	// backoff, receiver-side dedup) on the wireless up/downlinks, so
	// algorithms keep the model's FIFO + prefix-delivery semantics when the
	// substrate underneath loses, duplicates, or reorders wireless frames.
	// Wired MSS-to-MSS channels stay lossless per the model and are not
	// touched. Off by default: over reliable channels the sublayer would
	// only add traffic and perturb seeded runs.
	ReliableWireless bool
	// ARQTimeout is the initial retransmission timeout in ticks; each retry
	// doubles it up to 8x. 0 derives a default from the wireless latency
	// range (enough for a data frame plus its ack at maximum latency).
	ARQTimeout sim.Time

	// WaiterLimit caps the number of delivery records parked per
	// in-transit MH (the waiter queue a never-arriving MH would otherwise
	// grow without bound). On overflow a routed payload is offered to the
	// custody hook when one is bound; anything not taken into custody is
	// dropped and counted in Stats.WaiterDrops. 0 (the default) means
	// unlimited, which keeps seeded traces byte-identical.
	WaiterLimit int

	// Placement maps each MH to its initial cell. Nil means round-robin
	// (mh i starts at MSS i mod M).
	Placement func(mh MHID) MSSID

	// Trace, when non-nil, receives one line per model-level event
	// (mobility protocol steps, searches, delivery failures). Useful for
	// debugging protocol runs; adds no cost charges.
	Trace func(t sim.Time, event, detail string)

	// Obs, when non-nil, receives typed observability events (internal/obs)
	// from the engine's model-level emission points: mobility protocol
	// steps, routed deliveries with chase-hop counts, searches, delivery
	// failures, and ARQ activity. Substrate adapters additionally wrap
	// their substrate with ObserveSubstrate so channel transmissions are
	// recorded at the Substrate seam. Nil (the default) costs one branch
	// per would-be event and allocates nothing.
	Obs *obs.Tracer
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.M < 1 {
		return fmt.Errorf("engine: M must be >= 1, got %d", c.M)
	}
	if c.N < 1 {
		return fmt.Errorf("engine: N must be >= 1, got %d", c.N)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Wired.Validate("wired"); err != nil {
		return err
	}
	if err := c.Wireless.Validate("wireless"); err != nil {
		return err
	}
	if err := c.Travel.Validate("travel"); err != nil {
		return err
	}
	if c.ARQTimeout < 0 {
		return fmt.Errorf("engine: ARQTimeout must be >= 0, got %d", c.ARQTimeout)
	}
	if c.WaiterLimit < 0 {
		return fmt.Errorf("engine: WaiterLimit must be >= 0, got %d", c.WaiterLimit)
	}
	switch c.SearchMode {
	case SearchAbstract, SearchBroadcast:
	default:
		return fmt.Errorf("engine: unknown search mode %d", int(c.SearchMode))
	}
	return nil
}
