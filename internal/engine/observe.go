package engine

import (
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// observedSubstrate interposes the event tracer at the Substrate/Transmit
// seam — the same seam the fault injector wraps — so every message handed
// to the transport is recorded, whatever substrate (or injector stack)
// sits underneath. Only TransmitRec is observed here; model-level events
// (mobility, delivery, search, ARQ) are emitted by the engine itself,
// which is the only layer that knows their meaning.
type observedSubstrate struct {
	inner Substrate
	t     *obs.Tracer
}

var (
	_ Substrate     = (*observedSubstrate)(nil)
	_ FaultReporter = (*observedSubstrate)(nil)
)

// ObserveSubstrate wraps inner so every TransmitRec records an
// obs.EvTransmit event. A nil tracer returns inner unchanged, keeping the
// tracing-disabled hot path free of the extra indirection.
func ObserveSubstrate(inner Substrate, t *obs.Tracer) Substrate {
	if t == nil {
		return inner
	}
	return &observedSubstrate{inner: inner, t: t}
}

func (o *observedSubstrate) Now() sim.Time { return o.inner.Now() }

func (o *observedSubstrate) Enqueue(fn func()) { o.inner.Enqueue(fn) }

func (o *observedSubstrate) After(d sim.Time, fn func()) { o.inner.After(d, fn) }

func (o *observedSubstrate) BindRecSink(sink RecSink) { o.inner.BindRecSink(sink) }

func (o *observedSubstrate) TransmitRec(ch int, latency sim.Time, rec *DeliveryRec) {
	o.t.Record(o.inner.Now(), obs.EvTransmit, int32(ch), int32(latency), 0)
	o.inner.TransmitRec(ch, latency, rec)
}

func (o *observedSubstrate) AfterRec(d sim.Time, rec *DeliveryRec) { o.inner.AfterRec(d, rec) }

func (o *observedSubstrate) EnqueueRec(rec *DeliveryRec) { o.inner.EnqueueRec(rec) }

func (o *observedSubstrate) RNG() *sim.RNG { return o.inner.RNG() }

// DaemonAfter forwards daemon timers to the inner substrate's scheduler
// when it has one, falling back to After (see DaemonScheduler).
func (o *observedSubstrate) DaemonAfter(d sim.Time, fn func()) {
	if ds, ok := o.inner.(DaemonScheduler); ok {
		ds.DaemonAfter(d, fn)
		return
	}
	o.inner.After(d, fn)
}

// FaultStats forwards the inner substrate's loss accounting so wrapping
// the injector does not hide it from Engine.Stats; a fault-free inner
// substrate reports zeroes.
func (o *observedSubstrate) FaultStats() FaultStats {
	if fr, ok := o.inner.(FaultReporter); ok {
		return fr.FaultStats()
	}
	return FaultStats{}
}
