package engine

import (
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// The reliable-wireless sublayer: a per-channel stop-and-wait ARQ that sits
// between the engine's wireless sends (transmitDown / transmitUp) and the
// substrate's raw FIFO transport. The paper's model assumes lossless FIFO
// wireless channels; when the substrate underneath actually drops,
// duplicates, or reorders frames (internal/faults), this layer restores
// exactly those semantics so every algorithm above is untouched:
//
//   - each logical message becomes a data frame carrying a per-channel
//     sequence number; the sender holds frame k+1 until frame k is acked;
//   - a receiver delivers frame k exactly when k is the next expected
//     sequence number, acks it on the reverse wireless channel, and re-acks
//     (without redelivering) duplicates of already-accepted frames;
//   - an unacked frame is retransmitted on an ack timeout, with the timeout
//     doubling per retry up to a cap and resetting on progress.
//
// Stop-and-wait (window of one) keeps per-channel order trivially: a frame
// cannot overtake its predecessor because the predecessor's ack gates it.
// Acks themselves are not acknowledged — a lost ack causes a retransmission
// that the receiver dedups and re-acks.
//
// Retransmissions and acks are control traffic of the network layer: they
// are counted in Stats (Retransmits, DuplicatesSuppressed) but charged to
// no cost category, so the paper's Table-2-style algorithm costs stay
// comparable across fault plans. Against a link that stays dark forever the
// sender retransmits indefinitely (the model has no notion of giving up on
// a connected MH); fault plans use finite flap windows and restart times.
//
// Wired MSS-to-MSS channels bypass this layer entirely: the model keeps
// them lossless, and the fault injector only discards wired traffic at a
// crashed station, which is a station failure, not a link failure.

// arqFrame is one logical message queued on a wireless channel. The ack
// channel is captured at send time: for a downlink it is the MH's uplink;
// for an uplink it is the downlink of the cell the MH occupied when it
// sent (acks are network-layer control and not subject to presence
// semantics, so a stale cell still acks correctly).
//
// Record ownership: rec is the payload delivery record. The sender queue
// owns it from send() until recvAck pops the frame and frees it; the
// receiver runs it (runRec, no free) on first acceptance. Air copies
// (opArqData), acks (opArqAck) and ack timers (opArqTimeout) are fresh
// records per transmission attempt, freed by StepRec like any other; a
// dropped or duplicated air copy therefore never touches the payload's
// lifetime, which is what makes retransmission safe under pooling.
type arqFrame struct {
	seq   uint64
	ackCh int
	rec   *DeliveryRec
}

// arqChan is the sender and receiver state of one wireless channel.
// A channel carries data in exactly one direction, so one struct holds
// both ends without confusion: sender fields are used by the transmitting
// engine side, recvNext by the delivering side.
type arqChan struct {
	// Sender side.
	sendNext    uint64
	queue       []arqFrame // queue[0] is in flight iff outstanding
	outstanding bool
	rto         sim.Time
	retries     int32  // retransmissions of the current in-flight frame
	timerGen    uint64 // invalidates stale ack timers
	// Receiver side.
	recvNext uint64
}

type arq struct {
	e      *Engine
	chans  []*arqChan       // flat channel numbering; entries nil until first use
	sparse map[int]*arqChan // replaces chans above DenseChannelLimit
	rto0   sim.Time
	rtoMax sim.Time
}

func newARQ(e *Engine) *arq {
	rto := e.cfg.ARQTimeout
	if rto == 0 {
		// Data frame out plus ack back, both at maximum latency, plus slack
		// for same-instant scheduling.
		rto = 2*e.cfg.Wireless.Max + 4
	}
	a := &arq{e: e, rto0: rto, rtoMax: 8 * rto}
	if n := ChannelCount(e.cfg.M, e.cfg.N); n > DenseChannelLimit {
		a.sparse = make(map[int]*arqChan)
	} else {
		a.chans = make([]*arqChan, n)
	}
	return a
}

func (a *arq) state(ch int) *arqChan {
	if a.sparse != nil {
		st := a.sparse[ch]
		if st == nil {
			st = &arqChan{rto: a.rto0}
			a.sparse[ch] = st
		}
		return st
	}
	st := a.chans[ch]
	if st == nil {
		st = &arqChan{rto: a.rto0}
		a.chans[ch] = st
	}
	return st
}

// send enqueues one logical message on wireless channel ch, transmitting
// immediately if the channel has no frame in flight.
func (a *arq) send(ch, ackCh int, rec *DeliveryRec) {
	st := a.state(ch)
	st.queue = append(st.queue, arqFrame{seq: st.sendNext, ackCh: ackCh, rec: rec})
	st.sendNext++
	if !st.outstanding {
		a.transmitHead(ch)
	}
}

// transmitHead puts the head-of-queue frame on the air and arms its ack
// timer. Called for both first transmissions and retransmissions; each
// attempt gets a fresh air record and timer record, so an injector
// dropping one copy frees only that copy.
func (a *arq) transmitHead(ch int) {
	st := a.state(ch)
	f := st.queue[0]
	st.outstanding = true
	st.timerGen++
	air := a.e.newRec(opArqData)
	air.ch = int32(ch)
	air.ackCh = int32(f.ackCh)
	air.seq = f.seq
	air.inner = f.rec
	a.e.sub.TransmitRec(ch, a.e.delay(a.e.cfg.Wireless), air)
	timer := a.e.newRec(opArqTimeout)
	timer.ch = int32(ch)
	timer.seq = st.timerGen
	a.e.sub.AfterRec(st.rto, timer)
}

// timeout fires when an ack did not arrive in time; a stale generation
// means the frame was acked (or already retransmitted) and the timer is a
// no-op, so timers never rearm and simulations quiesce.
func (a *arq) timeout(ch int, gen uint64) {
	st := a.state(ch)
	if !st.outstanding || st.timerGen != gen {
		return
	}
	a.e.stats.Retransmits++
	st.retries++
	a.e.event(obs.EvRetransmit, int32(ch), st.retries, 0)
	if st.rto < a.rtoMax {
		st.rto *= 2
		if st.rto > a.rtoMax {
			st.rto = a.rtoMax
		}
	}
	a.transmitHead(ch)
}

// recvData runs at the receiving end of channel ch when a data frame
// survives the link. payload is the frame's delivery record; it is run in
// place (not freed — the sender queue owns it until acked), and a
// suppressed duplicate never touches it, so a payload already released by
// a completed ack round is never dereferenced through a straggler copy.
func (a *arq) recvData(ch, ackCh int, seq uint64, payload *DeliveryRec) {
	st := a.state(ch)
	switch {
	case seq == st.recvNext:
		st.recvNext++
		a.sendAck(ackCh, ch, seq)
		a.e.runRec(payload)
	case seq < st.recvNext:
		// A retransmitted or injector-duplicated copy of an accepted frame:
		// suppress it, but re-ack so a sender whose ack was lost makes
		// progress.
		a.e.stats.DuplicatesSuppressed++
		a.sendAck(ackCh, ch, st.recvNext-1)
	}
	// seq > recvNext is impossible under stop-and-wait: the sender holds
	// frame k+1 until frame k is acked, so a reordered copy is always old.
}

// sendAck acknowledges seq on dataCh by transmitting on the reverse
// wireless channel. Acks are fire-and-forget: a lost ack is repaired by the
// data sender's retransmission.
func (a *arq) sendAck(ackCh, dataCh int, seq uint64) {
	ack := a.e.newRec(opArqAck)
	ack.ch = int32(dataCh)
	ack.seq = seq
	a.e.sub.TransmitRec(ackCh, a.e.delay(a.e.cfg.Wireless), ack)
}

// recvAck resolves the in-flight frame of dataCh and releases the next.
func (a *arq) recvAck(ch int, seq uint64) {
	st := a.state(ch)
	if !st.outstanding || st.queue[0].seq != seq {
		return // duplicate or stale ack
	}
	st.outstanding = false
	a.e.FreeRec(st.queue[0].rec) // delivered (and run) at the receiver; release the payload
	st.queue = append(st.queue[:0], st.queue[1:]...)
	st.rto = a.rto0
	a.e.event(obs.EvAck, int32(ch), st.retries, 0)
	st.retries = 0
	st.timerGen++ // cancel the pending ack timer
	if len(st.queue) > 0 {
		a.transmitHead(ch)
	}
}
