package engine

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"testing"
)

// The substrate adapters (internal/core, internal/rt, internal/netrt) and
// the datagram session layer (internal/dgram) must stay thin: the protocol
// lives here, once. This guard fails if an adapter grows a local
// re-declaration of engine-owned logic — the exact duplication this package
// was extracted to eliminate. dgram is scanned too because its retransmit
// and reassembly machinery sits one temptation away from re-growing the
// engine's routing/ARQ surface. If this test fires, move the logic into the
// engine (or rename honestly, if it truly is substrate plumbing).
var forbiddenAdapterDecls = map[string]string{
	// routing
	"routeToMH":                "MH routing with search/retry/chase is engine-owned",
	"routeToMSSOfMH":           "MSS-of-MH routing is engine-owned",
	"wirelessDown":             "downlink delivery with prefix semantics is engine-owned",
	"deliverToMH":              "per-pair FIFO reorder delivery is engine-owned",
	"chargeSearch":             "search accounting is engine-owned",
	"reclassifyWastedWireless": "stale-transmission reclassification is engine-owned",
	"sendFixed":                "wired sends are engine-owned",
	"broadcastFixed":           "wired broadcast is engine-owned",
	"sendToMH":                 "routed sends are engine-owned",
	"sendToLocalMH":            "local wireless sends are engine-owned",
	"sendFromMH":               "uplink sends (and their deferred replay) are engine-owned",
	"sendMHToMH":               "MH-to-MH send pipeline is engine-owned",
	"sendMHViaMSS":             "via-MSS MH sends are engine-owned",
	"sendToMHVia":              "directory-forwarded sends are engine-owned",
	"forwardViaMSS":            "directory forwarding is engine-owned",
	// mobility
	"completeJoin":        "the join half of the mobility protocol is engine-owned",
	"runReconnectHandoff": "the reconnect handoff is engine-owned",
	"fireWaiters":         "in-transit waiter queues are engine-owned",
	"notifyJoin":          "mobility observer dispatch is engine-owned",
	"notifyLeave":         "mobility observer dispatch is engine-owned",
	"notifyDisconnect":    "mobility observer dispatch is engine-owned",
	"notifyFailure":       "delivery-failure dispatch is engine-owned",
	// dispatch and state
	"dispatchMSS":      "handler dispatch is engine-owned",
	"dispatchMH":       "handler dispatch is engine-owned",
	"localMHs":         "cell membership state is engine-owned",
	"mssState":         "MSS registry state is engine-owned",
	"mhState":          "MH status machine state is engine-owned",
	"pairKey":          "per-pair FIFO state is engine-owned",
	"pairState":        "per-pair FIFO state is engine-owned",
	"deferredDelivery": "per-pair FIFO state is engine-owned",
	"sortedMHs":        "sorted-slice membership is engine-owned",
	"routeOpts":        "routing context is engine-owned",
	"waiters":          "in-transit waiter queues are engine-owned",
	// per-channel FIFO bookkeeping (substrates use FIFOClock or pipes)
	"fifoWired": "FIFO arrival clamping lives in engine.FIFOClock",
	"fifoDown":  "FIFO arrival clamping lives in engine.FIFOClock",
	"fifoUp":    "FIFO arrival clamping lives in engine.FIFOClock",
	"lastWired": "FIFO high-water marks live in engine.FIFOClock",
	"lastDown":  "FIFO high-water marks live in engine.FIFOClock",
	"lastUp":    "FIFO high-water marks live in engine.FIFOClock",
	// contexts (both substrates must hand out the engine's algContext)
	"simContext": "core must hand out the engine's Context implementation",
	"rtContext":  "rt must hand out the engine's Context implementation",
}

func TestSubstrateAdaptersDoNotRedeclareEngineLogic(t *testing.T) {
	for _, dir := range []string{"../core", "../rt", "../netrt", "../dgram"} {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no Go sources found in %s", dir)
		}
		for _, file := range files {
			if filepath.Ext(file) != ".go" || isTestFile(file) {
				continue
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, file, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", file, err)
			}
			checkDecls(t, fset, f)
		}
	}
}

// faultInjectorAllowedEngineRefs is the complete engine surface the fault
// injector (internal/faults) may touch: the Substrate seam it wraps, the
// delivery-record currency that flows through it (DeliveryRec and the
// RecSink pool protocol), the channel-numbering decoder, the loss-reporting
// types, and the public model vocabulary. Anything else — routing,
// mobility, FIFO bookkeeping, ARQ — is engine-internal, and an injector
// reaching for it is drifting from a substrate wrapper into a second
// protocol implementation.
var faultInjectorAllowedEngineRefs = map[string]bool{
	"Substrate":       true,
	"DaemonScheduler": true,
	"DeliveryRec":     true,
	"RecSink":         true,
	"ChannelLayout":   true,
	"ChannelKind":     true,
	"ChannelWired":    true,
	"ChannelDown":     true,
	"ChannelUp":       true,
	"ChannelCount":    true,
	"FaultStats":      true,
	"FaultReporter":   true,
	"MSSID":           true,
	"MHID":            true,
	"Delay":           true,
}

// TestFaultInjectorUsesOnlyTheSubstrateSeam fails if internal/faults
// references any engine identifier outside the allowlist above: the
// injector must observe and disturb traffic purely through the Substrate
// interface and the channel-layout decoder, never by reaching into engine
// internals.
func TestFaultInjectorUsesOnlyTheSubstrateSeam(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("../faults", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Go sources found in ../faults")
	}
	for _, file := range files {
		if isTestFile(file) {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "engine" || pkg.Obj != nil {
				return true
			}
			if !faultInjectorAllowedEngineRefs[sel.Sel.Name] {
				t.Errorf("%s: references engine.%s — the fault injector may only use the Substrate seam (%v)",
					fset.Position(sel.Pos()), sel.Sel.Name, sortedAllowedRefs())
			}
			return true
		})
	}
}

// deliveryPathClosureAllowlist names the top-level functions in the
// delivery-path files that may still build closures: build-time plumbing
// that runs once per system, never per message. Everything else in these
// files must express deferred work as a pooled DeliveryRec interpreted by
// runRec — a closure on a routing, ARQ, or mobility path is a per-message
// heap allocation creeping back in, exactly what the record refactor
// removed. To add a legitimate control-path closure, name its enclosing
// function here with a reason.
var deliveryPathClosureAllowlist = map[string]string{
	"New": "engine construction: default-placement closure, built once",
}

// TestDeliveryPathsBuildNoClosures fails if routing.go, arq.go,
// mobility.go, or engine.go contains a func literal outside the allowlist
// above. This is the record-discipline guard: the CPS delivery chain was
// replaced by value-state records, and this test keeps it replaced.
func TestDeliveryPathsBuildNoClosures(t *testing.T) {
	for _, file := range []string{"routing.go", "arq.go", "mobility.go", "engine.go"} {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, allowed := deliveryPathClosureAllowlist[fd.Name.Name]; allowed {
				continue
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					t.Errorf("%s: func literal in %s — delivery paths must use pooled DeliveryRecs (newRec + TransmitRec/AfterRec/EnqueueRec), not closures; see deliveryPathClosureAllowlist",
						fset.Position(lit.Pos()), fd.Name.Name)
				}
				return true
			})
		}
	}
}

func sortedAllowedRefs() []string {
	out := make([]string, 0, len(faultInjectorAllowedEngineRefs))
	for name := range faultInjectorAllowedEngineRefs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func isTestFile(path string) bool {
	base := filepath.Base(path)
	return len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go"
}

func checkDecls(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	flag := func(name string, pos token.Pos) {
		if reason, bad := forbiddenAdapterDecls[name]; bad {
			t.Errorf("%s: declares %q — %s; delete the duplicate and call the engine",
				fset.Position(pos), name, reason)
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			flag(d.Name.Name, d.Name.Pos())
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					flag(sp.Name.Name, sp.Name.Pos())
					if st, ok := sp.Type.(*ast.StructType); ok {
						for _, field := range st.Fields.List {
							for _, fn := range field.Names {
								flag(fn.Name, fn.Pos())
							}
						}
					}
				case *ast.ValueSpec:
					for _, vn := range sp.Names {
						flag(vn.Name, vn.Pos())
					}
				}
			}
		}
	}
}
