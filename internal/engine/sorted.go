package engine

import "sort"

// sortedMHs is a cell's local-membership set kept as a sorted slice. The
// hot paths — membership tests on every wireless send and full ascending
// iteration in LocalMHs — are a binary search and a plain slice read, with
// no per-call allocation or sorting. Insertions and removals shift the
// tail, which is cheap at realistic cell sizes (N/M hosts per cell).
type sortedMHs struct {
	ids []MHID // ascending, no duplicates
}

// has reports membership.
func (s *sortedMHs) has(id MHID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// add inserts id, keeping the slice sorted; inserting an existing id is a
// no-op.
func (s *sortedMHs) add(id MHID) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// remove deletes id if present.
func (s *sortedMHs) remove(id MHID) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

// len reports the set size.
func (s *sortedMHs) len() int { return len(s.ids) }
