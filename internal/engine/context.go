package engine

import (
	"mobiledist/internal/cost"
	"mobiledist/internal/obs"
	"mobiledist/internal/sim"
)

// Context is the capability surface algorithms use to interact with the
// network. The engine provides the single implementation; substrates only
// supply time, scheduling, and channel transport underneath it.
type Context interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// After schedules fn to run on this node's execution context after d.
	After(d sim.Time, fn func())
	// AfterDaemon schedules fn like After but as a background daemon
	// timer: on live substrates the armed timer does not count as an
	// outstanding operation, so standing periodic maintenance (DTN gossip
	// ticks) cannot wedge WaitIdle. Use After for anything the network
	// must settle on.
	AfterDaemon(d sim.Time, fn func())
	// RNG returns a deterministic random source.
	RNG() *sim.RNG

	// M returns the number of mobile support stations.
	M() int
	// N returns the number of mobile hosts.
	N() int
	// Params returns the cost model constants.
	Params() cost.Params

	// SendFixed sends msg from MSS from to MSS to over the wired network
	// (FIFO, arbitrary latency, cost Cfixed). Self-sends are permitted and
	// charged, matching the paper's unconditional cost terms.
	SendFixed(from, to MSSID, msg Message, cat cost.Category)
	// BroadcastFixed sends msg from from to every other MSS ((M-1) fixed
	// messages).
	BroadcastFixed(from MSSID, msg Message, cat cost.Category)
	// SendToMH routes msg from MSS from to mobile host mh, searching for it
	// if necessary and retrying across moves until delivered, or reporting
	// failure via DeliveryFailureHandler if mh has disconnected.
	SendToMH(from MSSID, mh MHID, msg Message, cat cost.Category)
	// SendToLocalMH delivers msg over the local wireless channel only. It
	// returns an error if mh is not currently local to from.
	SendToLocalMH(from MSSID, mh MHID, msg Message, cat cost.Category) error
	// SendFromMH transmits msg from mh to its current local MSS. If mh is
	// between cells the send is deferred until it joins one. It returns an
	// error if mh has disconnected.
	SendFromMH(mh MHID, msg Message, cat cost.Category) error
	// SendMHToMH sends msg from one mobile host to another: wireless uplink,
	// routing with search, wireless downlink. Deliveries for each ordered
	// (from, to) pair are FIFO (the burden algorithm L1 places on the
	// network layer, Section 3.1.1).
	SendMHToMH(from, to MHID, msg Message, cat cost.Category) error
	// SendMHViaMSS sends msg from mobile host from to mobile host to by way
	// of the MSS a location directory names (the always-inform strategy of
	// Section 4.2): wireless uplink, one fixed hop to via (charged even if
	// via is the sender's own MSS), wireless downlink — no search. If the
	// directory entry is stale (to is no longer at via) the message is
	// re-routed with a search charged to cost.CatStale.
	SendMHViaMSS(from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error
	// SendToMHVia delivers msg from MSS from to mobile host to through the
	// MSS a directory names: one fixed hop (charged unconditionally) plus
	// the wireless downlink, no search. A stale directory entry falls back
	// to a search charged to cost.CatStale. This is how a fixed (home)
	// proxy that is kept informed of its MH's location reaches it
	// (Section 5).
	SendToMHVia(from, via MSSID, to MHID, msg Message, cat cost.Category)
	// SendToMSSOfMH locates mh and delivers msg to the MSS currently
	// serving it — the literal operation the paper prices at Csearch
	// ("locate a MH and forward a message to its current local MSS"). If mh
	// has disconnected the sender is notified via DeliveryFailureHandler.
	SendToMSSOfMH(from MSSID, mh MHID, msg Message, cat cost.Category)

	// IsLocal reports whether mh is currently in mss's cell. Only the local
	// MSS legitimately knows this (its list of local MHs).
	IsLocal(mss MSSID, mh MHID) bool
	// LocalMHs returns the MHs currently local to mss, in ascending order.
	// The returned slice may alias the network's live membership store:
	// callers must treat it as read-only and must not retain it across
	// events (mobility invalidates it).
	LocalMHs(mss MSSID) []MHID
	// IsDisconnectedHere reports whether mss holds the "disconnected" flag
	// for mh (i.e. mh disconnected while in mss's cell).
	IsDisconnectedHere(mss MSSID, mh MHID) bool

	// NoteTokenRegeneration records one recovery-elected token
	// regeneration in the model Stats (Stats.TokenRegenerations), so
	// experiments can surface recovery activity next to the cost columns.
	NoteTokenRegeneration()

	// NoteCSRequest, NoteCSEnter, and NoteCSExit record mutual-exclusion
	// progress in the observability stream (internal/obs): a request by mh,
	// the grant that admits mh to the critical section, and its release.
	// The tracer pairs request with enter to build the CS-latency
	// histogram. No-ops when tracing is disabled; never charged.
	NoteCSRequest(mh MHID)
	NoteCSEnter(mh MHID)
	NoteCSExit(mh MHID)
	// NoteTokenPass records a privilege (token) transfer from one mobile
	// host to the next in the observability stream.
	NoteTokenPass(from, to MHID)

	// NoteGroupInform, NoteGroupViewUpdate, and NoteGroupStaleLookup record
	// group-communication strategy activity (Section 4.2) in the
	// observability stream: a member's post-join location broadcast, a
	// view change the coordinator committed (added/removed are -1 when that
	// side did not change; size is the view size after), and a group send
	// that fell back to coordinator routing because the sender's local view
	// was not usable. No-ops when tracing is disabled; never charged.
	NoteGroupInform(mh MHID, at MSSID)
	NoteGroupViewUpdate(added, removed MSSID, size int)
	NoteGroupStaleLookup(mh MHID, at MSSID)

	// NoteBundleCustody, NoteBundleTransfer, NoteBundleDelivered,
	// NoteBundleExpired, and NoteBundleDropped record store-carry-forward
	// custody activity (internal/dtn) in the observability stream: a
	// bundle accepted into holder's store for mh, a replica shipped
	// between stations, the primary delivery (copies = replicas created
	// over the bundle's lifetime), a TTL expiry at holder, and a replica
	// dropped (quota, LRU eviction, duplicate, or crash wipe). No-ops
	// when tracing is disabled; never charged.
	NoteBundleCustody(id uint64, holder MSSID, mh MHID)
	NoteBundleTransfer(id uint64, from, to MSSID)
	NoteBundleDelivered(id uint64, at MSSID, copies int)
	NoteBundleExpired(id uint64, holder MSSID, mh MHID)
	NoteBundleDropped(id uint64, holder MSSID, mh MHID)
}

// algContext is the Context handed to one registered algorithm. It is the
// only Context implementation: both substrates share it, so every Context
// capability behaves identically on the simulator and the live runtime.
type algContext struct {
	e   *Engine
	alg int
}

var _ Context = (*algContext)(nil)

func (c *algContext) Now() sim.Time { return c.e.sub.Now() }

func (c *algContext) After(d sim.Time, fn func()) { c.e.sub.After(d, fn) }

func (c *algContext) AfterDaemon(d sim.Time, fn func()) {
	if ds, ok := c.e.sub.(DaemonScheduler); ok {
		ds.DaemonAfter(d, fn)
		return
	}
	c.e.sub.After(d, fn)
}

func (c *algContext) RNG() *sim.RNG { return c.e.sub.RNG() }

func (c *algContext) M() int { return c.e.cfg.M }

func (c *algContext) N() int { return c.e.cfg.N }

func (c *algContext) Params() cost.Params { return c.e.cfg.Params }

func (c *algContext) SendFixed(from, to MSSID, msg Message, cat cost.Category) {
	c.e.sendFixed(c.alg, from, to, msg, cat)
}

func (c *algContext) BroadcastFixed(from MSSID, msg Message, cat cost.Category) {
	c.e.broadcastFixed(c.alg, from, msg, cat)
}

func (c *algContext) SendToMH(from MSSID, mh MHID, msg Message, cat cost.Category) {
	c.e.sendToMH(c.alg, from, mh, msg, cat)
}

func (c *algContext) SendToLocalMH(from MSSID, mh MHID, msg Message, cat cost.Category) error {
	return c.e.sendToLocalMH(c.alg, from, mh, msg, cat)
}

func (c *algContext) SendFromMH(mh MHID, msg Message, cat cost.Category) error {
	return c.e.sendFromMH(c.alg, mh, msg, cat)
}

func (c *algContext) SendMHToMH(from, to MHID, msg Message, cat cost.Category) error {
	return c.e.sendMHToMH(c.alg, from, to, msg, cat)
}

func (c *algContext) SendMHViaMSS(from MHID, via MSSID, to MHID, msg Message, cat cost.Category) error {
	return c.e.sendMHViaMSS(c.alg, from, via, to, msg, cat)
}

func (c *algContext) SendToMHVia(from, via MSSID, to MHID, msg Message, cat cost.Category) {
	c.e.sendToMHVia(c.alg, from, via, to, msg, cat)
}

func (c *algContext) SendToMSSOfMH(from MSSID, mh MHID, msg Message, cat cost.Category) {
	c.e.sendToMSSOfMH(c.alg, from, mh, msg, cat)
}

func (c *algContext) IsLocal(mss MSSID, mh MHID) bool {
	c.e.checkMSS(mss)
	c.e.checkMH(mh)
	return c.e.mss[mss].local.has(mh)
}

func (c *algContext) LocalMHs(mss MSSID) []MHID {
	return c.e.localMHs(mss)
}

func (c *algContext) IsDisconnectedHere(mss MSSID, mh MHID) bool {
	c.e.checkMSS(mss)
	c.e.checkMH(mh)
	return c.e.mss[mss].disconnected[mh]
}

func (c *algContext) NoteTokenRegeneration() {
	c.e.stats.TokenRegenerations++
}

func (c *algContext) NoteCSRequest(mh MHID) {
	c.e.event(obs.EvCSRequest, int32(mh), 0, 0)
}

func (c *algContext) NoteCSEnter(mh MHID) {
	c.e.event(obs.EvCSEnter, int32(mh), 0, 0)
}

func (c *algContext) NoteCSExit(mh MHID) {
	c.e.event(obs.EvCSExit, int32(mh), 0, 0)
}

func (c *algContext) NoteTokenPass(from, to MHID) {
	c.e.event(obs.EvTokenPass, int32(from), int32(to), 0)
}

func (c *algContext) NoteGroupInform(mh MHID, at MSSID) {
	c.e.event(obs.EvGroupInform, int32(mh), int32(at), 0)
}

func (c *algContext) NoteGroupViewUpdate(added, removed MSSID, size int) {
	c.e.event(obs.EvGroupViewUpdate, int32(added), int32(removed), int32(size))
}

func (c *algContext) NoteGroupStaleLookup(mh MHID, at MSSID) {
	c.e.event(obs.EvGroupStaleLookup, int32(mh), int32(at), 0)
}

func (c *algContext) NoteBundleCustody(id uint64, holder MSSID, mh MHID) {
	c.e.event(obs.EvBundleCustody, int32(id), int32(holder), int32(mh))
}

func (c *algContext) NoteBundleTransfer(id uint64, from, to MSSID) {
	c.e.event(obs.EvBundleTransfer, int32(id), int32(from), int32(to))
}

func (c *algContext) NoteBundleDelivered(id uint64, at MSSID, copies int) {
	c.e.event(obs.EvBundleDelivered, int32(id), int32(at), int32(copies))
}

func (c *algContext) NoteBundleExpired(id uint64, holder MSSID, mh MHID) {
	c.e.event(obs.EvBundleExpired, int32(id), int32(holder), int32(mh))
}

func (c *algContext) NoteBundleDropped(id uint64, holder MSSID, mh MHID) {
	c.e.event(obs.EvBundleDropped, int32(id), int32(holder), int32(mh))
}
