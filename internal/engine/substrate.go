package engine

import "mobiledist/internal/sim"

// Substrate is the execution backend an Engine drives. The engine owns the
// entire protocol model — registries, status machine, routing, mobility,
// cost accounting — and calls into the substrate for exactly four services:
// time, deferred execution, per-channel FIFO transport, and randomness.
//
// Two substrates exist: the deterministic simulation kernel (internal/core
// binds sim.Kernel) and the goroutine live runtime (internal/rt binds its
// executor and channel pipes). Every Substrate method is invoked from the
// engine's execution context (the kernel goroutine or the rt executor), and
// every callback or record handed to the substrate must be run back on that
// same execution context.
//
// Message delivery travels as pooled DeliveryRec values, not closures: the
// engine binds itself as the substrate's RecSink at construction, and the
// substrate hands each scheduled record to the sink when its time arrives
// (StepRec executes and recycles it). The closure forms Enqueue and After
// remain for control-path callers — algorithm timers (Context.After) and
// fault-plan arming — which are rare and may allocate.
type Substrate interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// Enqueue runs fn on the execution context as soon as possible,
	// preserving submission order among Enqueue calls.
	Enqueue(fn func())
	// After runs fn on the execution context after d ticks of virtual time.
	After(d sim.Time, fn func())
	// BindRecSink registers the sink that executes delivery records. The
	// engine calls it exactly once, before any record is scheduled; a
	// record-aware wrapper (the fault injector) forwards the bind and may
	// interpose its own sink.
	BindRecSink(sink RecSink)
	// TransmitRec delivers rec on FIFO channel ch: hand it to the bound
	// sink after the drawn link latency, never overtaking an earlier
	// TransmitRec on the same channel. Channel ids are the engine's flat
	// numbering (see ChannelCount).
	TransmitRec(ch int, latency sim.Time, rec *DeliveryRec)
	// AfterRec hands rec to the bound sink after d ticks of virtual time,
	// outside any channel's FIFO order.
	AfterRec(d sim.Time, rec *DeliveryRec)
	// EnqueueRec hands rec to the bound sink as soon as possible,
	// preserving submission order with Enqueue.
	EnqueueRec(rec *DeliveryRec)
	// RNG returns the deterministic random source latencies are drawn from.
	RNG() *sim.RNG
}

// DaemonScheduler is an optional Substrate extension for background
// timers — periodic maintenance like DTN gossip ticks — that must not
// hold the substrate's idle/quiescence accounting open while armed. A
// plain After on the live substrates counts as an outstanding operation
// until it fires, so a standing timer would wedge WaitIdle; DaemonAfter
// schedules outside that accounting. The callback still runs on the
// engine's execution context. Substrates without the extension fall back
// to After (harmless on the simulator, where virtual time jumps).
type DaemonScheduler interface {
	DaemonAfter(d sim.Time, fn func())
}

// ChannelCount returns the number of distinct FIFO channels in an (m, n)
// network: m*m ordered wired MSS pairs, m*n wireless downlinks, and n
// wireless uplinks. The engine numbers them contiguously in that order, so
// a substrate can size flat per-channel state once at construction.
func ChannelCount(m, n int) int { return m*m + m*n + n }

// ChannelKind classifies a flat channel id.
type ChannelKind int

// Channel kinds, in flat-numbering order.
const (
	// ChannelWired is an ordered MSS-to-MSS wired channel.
	ChannelWired ChannelKind = iota + 1
	// ChannelDown is an MSS-to-MH wireless downlink.
	ChannelDown
	// ChannelUp is an MH uplink (to whichever MSS serves its current cell).
	ChannelUp
)

// ChannelLayout decodes the engine's flat channel numbering for an (m, n)
// network. It is the classification surface for transport-level tooling
// that wraps a Substrate (the fault injector): such tooling must depend on
// nothing of the engine beyond Substrate, ChannelCount and this decoder.
type ChannelLayout struct{ M, N int }

// Count returns ChannelCount(l.M, l.N).
func (l ChannelLayout) Count() int { return ChannelCount(l.M, l.N) }

// Decode classifies ch. For ChannelWired, a and b are the source and
// destination MSS ids; for ChannelDown, a is the MSS and b the MH; for
// ChannelUp, a is -1 (the receiving MSS depends on where the MH is) and b
// is the MH.
func (l ChannelLayout) Decode(ch int) (kind ChannelKind, a, b int) {
	wired := l.M * l.M
	down := wired + l.M*l.N
	switch {
	case ch < wired:
		return ChannelWired, ch / l.M, ch % l.M
	case ch < down:
		rel := ch - wired
		return ChannelDown, rel / l.N, rel % l.N
	default:
		return ChannelUp, -1, ch - down
	}
}

// FaultStats are the counters a fault-injecting Substrate wrapper keeps
// about the transmissions it disturbed. Engine.Stats folds them into the
// model-level Stats so experiments observe loss without the engine knowing
// the injector's type.
type FaultStats struct {
	// WirelessDrops counts wireless transmissions destroyed in flight
	// (random loss, a flapped link, or a crashed station's radio).
	WirelessDrops int64
	// WirelessDuplicates counts extra wireless copies injected.
	WirelessDuplicates int64
	// WirelessReorders counts wireless deliveries released out of FIFO
	// order.
	WirelessReorders int64
	// CrashDiscards counts wired transmissions discarded because the
	// sending or receiving MSS was crashed.
	CrashDiscards int64
}

// FaultReporter is implemented by substrates (or substrate wrappers) that
// inject faults and account for them.
type FaultReporter interface {
	FaultStats() FaultStats
}

// Flat channel numbering. The zero-allocation arithmetic here is the
// per-message replacement for hashing a (kind, a, b) key.
func (e *Engine) chanWired(from, to MSSID) int {
	return int(from)*e.cfg.M + int(to)
}

func (e *Engine) chanDown(mss MSSID, mh MHID) int {
	return e.cfg.M*e.cfg.M + int(mss)*e.cfg.N + int(mh)
}

func (e *Engine) chanUp(mh MHID) int {
	return e.cfg.M*e.cfg.M + e.cfg.M*e.cfg.N + int(mh)
}

// DenseChannelLimit is the largest channel count for which per-channel
// state is kept in flat arrays. ChannelCount is dominated by the M*N
// downlink block, which reaches ~10^10 at M=10^4/N=10^6 — far beyond what
// flat slices can hold — while the number of channels that ever carry
// traffic is bounded by live (cell, MH) attachments, O(N). Above the limit,
// per-channel structures switch to sparse maps keyed by channel id; the
// semantics are identical either way.
const DenseChannelLimit = 1 << 22

// denseWiredLimit is the largest wired block (M*M entries) a layout-aware
// FIFOClock keeps as a flat slice. It is far above DenseChannelLimit because
// the wired block is only quadratic in the station count — 10^8 entries at
// M=10^4, within reach of a flat allocation — whereas the downlink block is
// M*N and genuinely intractable flat.
const denseWiredLimit = 1 << 27

// downMark is one per-MH downlink high-water mark: the latest arrival
// scheduled on the (mss, mh) downlink. A host accumulates one entry per
// distinct cell that has ever sent to it, which mobility keeps small.
type downMark struct {
	mss  int32
	mark sim.Time
}

// FIFOClock computes FIFO-respecting arrival times for virtual-time
// substrates: per-channel high-water marks indexed by the engine's channel
// numbering. A missing entry means "no prior traffic". Substrates that
// serialize channels physically (one goroutine per channel, as internal/rt
// does) do not need it.
//
// Two storage modes exist. NewFIFOClock keeps one flat slice up to
// DenseChannelLimit channels and overflows to a sparse map — the generic
// form for any channel numbering. NewFIFOClockLayout knows the engine's
// wired/down/up block structure and never needs a global map: the wired and
// uplink blocks stay flat (they are M^2 and N entries), and the downlink
// block — M*N ids, ~10^10 at full scale — is held as per-MH mark lists,
// exploiting that a host only carries downlink history from cells that have
// actually transmitted to it. The arrival semantics are identical in every
// mode; only the lookup cost differs.
type FIFOClock struct {
	// Generic single-block storage (NewFIFOClock).
	last   []sim.Time
	sparse map[int]sim.Time

	// Layout-aware storage (NewFIFOClockLayout). up non-nil selects this
	// mode. Downlink marks are split into a flat hottest-mark-per-MH array
	// (one cache line per lookup in the common case of a host served by its
	// current cell) and a rarely-touched overflow list holding marks from the
	// host's previous cells. A zero mark means "no prior traffic", which is
	// exact: clamping against 0 is a no-op.
	n        int
	wiredEnd int
	downEnd  int
	wired    []sim.Time
	wiredMap map[int]sim.Time // wired fallback above denseWiredLimit
	down0    []downMark
	downOv   [][]downMark
	up       []sim.Time
}

// NewFIFOClock returns a clock for the given channel count with generic
// storage: flat up to DenseChannelLimit channels, sparse beyond.
func NewFIFOClock(channels int) *FIFOClock {
	if channels > DenseChannelLimit {
		return &FIFOClock{sparse: make(map[int]sim.Time)}
	}
	return &FIFOClock{last: make([]sim.Time, channels)}
}

// NewFIFOClockLayout returns a clock for the engine's (m, n) channel
// numbering using per-block storage, avoiding sparse-map lookups on the
// per-message hot path at every supported scale.
func NewFIFOClockLayout(m, n int) *FIFOClock {
	c := &FIFOClock{
		n:        n,
		wiredEnd: m * m,
		downEnd:  m*m + m*n,
		down0:    make([]downMark, n),
		downOv:   make([][]downMark, n),
		up:       make([]sim.Time, n),
	}
	if m*m <= denseWiredLimit {
		c.wired = make([]sim.Time, m*m)
	} else {
		c.wiredMap = make(map[int]sim.Time)
	}
	return c
}

// Arrival returns the delivery time for a message sent now with the given
// latency on channel ch, clamped so it never precedes an earlier message on
// the same channel, and records it as the channel's new high-water mark.
func (c *FIFOClock) Arrival(ch int, now, latency sim.Time) sim.Time {
	arrival := now + latency
	if c.up == nil {
		// Generic single-block storage.
		if c.sparse != nil {
			if last := c.sparse[ch]; arrival < last {
				arrival = last
			}
			c.sparse[ch] = arrival
			return arrival
		}
		if last := c.last[ch]; arrival < last {
			arrival = last
		}
		c.last[ch] = arrival
		return arrival
	}
	switch {
	case ch < c.wiredEnd:
		if c.wired != nil {
			slot := &c.wired[ch]
			if *slot > arrival {
				arrival = *slot
			}
			*slot = arrival
			return arrival
		}
		if last := c.wiredMap[ch]; last > arrival {
			arrival = last
		}
		c.wiredMap[ch] = arrival
		return arrival
	case ch < c.downEnd:
		rel := ch - c.wiredEnd
		mh := rel % c.n
		mss := int32(rel / c.n)
		d := &c.down0[mh]
		if d.mss == mss && d.mark != 0 {
			if d.mark > arrival {
				arrival = d.mark
			}
			d.mark = arrival
			return arrival
		}
		ov := c.downOv[mh]
		for i := range ov {
			if ov[i].mss == mss {
				if ov[i].mark > arrival {
					arrival = ov[i].mark
				}
				// Promote the hit to the hot slot; the displaced mark keeps
				// the overflow position.
				ov[i], *d = *d, downMark{mss: mss, mark: arrival}
				return arrival
			}
		}
		// First traffic on this (mss, mh) downlink: it takes the hot slot,
		// demoting whatever held it.
		if d.mark != 0 {
			c.downOv[mh] = append(ov, *d)
		}
		*d = downMark{mss: mss, mark: arrival}
		return arrival
	default:
		slot := &c.up[ch-c.downEnd]
		if *slot > arrival {
			arrival = *slot
		}
		*slot = arrival
		return arrival
	}
}
