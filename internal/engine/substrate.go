package engine

import "mobiledist/internal/sim"

// Substrate is the execution backend an Engine drives. The engine owns the
// entire protocol model — registries, status machine, routing, mobility,
// cost accounting — and calls into the substrate for exactly four services:
// time, deferred execution, per-channel FIFO transport, and randomness.
//
// Two substrates exist: the deterministic simulation kernel (internal/core
// binds sim.Kernel) and the goroutine live runtime (internal/rt binds its
// executor and channel pipes). Every Substrate method is invoked from the
// engine's execution context (the kernel goroutine or the rt executor), and
// every callback handed to the substrate must be run back on that same
// execution context.
type Substrate interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// Enqueue runs fn on the execution context as soon as possible,
	// preserving submission order among Enqueue calls.
	Enqueue(fn func())
	// After runs fn on the execution context after d ticks of virtual time.
	After(d sim.Time, fn func())
	// Transmit delivers one message on FIFO channel ch: run deliver on the
	// execution context after the drawn link latency, never overtaking an
	// earlier Transmit on the same channel. Channel ids are the engine's
	// flat numbering (see ChannelCount).
	Transmit(ch int, latency sim.Time, deliver func())
	// RNG returns the deterministic random source latencies are drawn from.
	RNG() *sim.RNG
}

// ChannelCount returns the number of distinct FIFO channels in an (m, n)
// network: m*m ordered wired MSS pairs, m*n wireless downlinks, and n
// wireless uplinks. The engine numbers them contiguously in that order, so
// a substrate can size flat per-channel state once at construction.
func ChannelCount(m, n int) int { return m*m + m*n + n }

// ChannelKind classifies a flat channel id.
type ChannelKind int

// Channel kinds, in flat-numbering order.
const (
	// ChannelWired is an ordered MSS-to-MSS wired channel.
	ChannelWired ChannelKind = iota + 1
	// ChannelDown is an MSS-to-MH wireless downlink.
	ChannelDown
	// ChannelUp is an MH uplink (to whichever MSS serves its current cell).
	ChannelUp
)

// ChannelLayout decodes the engine's flat channel numbering for an (m, n)
// network. It is the classification surface for transport-level tooling
// that wraps a Substrate (the fault injector): such tooling must depend on
// nothing of the engine beyond Substrate, ChannelCount and this decoder.
type ChannelLayout struct{ M, N int }

// Count returns ChannelCount(l.M, l.N).
func (l ChannelLayout) Count() int { return ChannelCount(l.M, l.N) }

// Decode classifies ch. For ChannelWired, a and b are the source and
// destination MSS ids; for ChannelDown, a is the MSS and b the MH; for
// ChannelUp, a is -1 (the receiving MSS depends on where the MH is) and b
// is the MH.
func (l ChannelLayout) Decode(ch int) (kind ChannelKind, a, b int) {
	wired := l.M * l.M
	down := wired + l.M*l.N
	switch {
	case ch < wired:
		return ChannelWired, ch / l.M, ch % l.M
	case ch < down:
		rel := ch - wired
		return ChannelDown, rel / l.N, rel % l.N
	default:
		return ChannelUp, -1, ch - down
	}
}

// FaultStats are the counters a fault-injecting Substrate wrapper keeps
// about the transmissions it disturbed. Engine.Stats folds them into the
// model-level Stats so experiments observe loss without the engine knowing
// the injector's type.
type FaultStats struct {
	// WirelessDrops counts wireless transmissions destroyed in flight
	// (random loss, a flapped link, or a crashed station's radio).
	WirelessDrops int64
	// WirelessDuplicates counts extra wireless copies injected.
	WirelessDuplicates int64
	// WirelessReorders counts wireless deliveries released out of FIFO
	// order.
	WirelessReorders int64
	// CrashDiscards counts wired transmissions discarded because the
	// sending or receiving MSS was crashed.
	CrashDiscards int64
}

// FaultReporter is implemented by substrates (or substrate wrappers) that
// inject faults and account for them.
type FaultReporter interface {
	FaultStats() FaultStats
}

// Flat channel numbering. The zero-allocation arithmetic here is the
// per-message replacement for hashing a (kind, a, b) key.
func (e *Engine) chanWired(from, to MSSID) int {
	return int(from)*e.cfg.M + int(to)
}

func (e *Engine) chanDown(mss MSSID, mh MHID) int {
	return e.cfg.M*e.cfg.M + int(mss)*e.cfg.N + int(mh)
}

func (e *Engine) chanUp(mh MHID) int {
	return e.cfg.M*e.cfg.M + e.cfg.M*e.cfg.N + int(mh)
}

// FIFOClock computes FIFO-respecting arrival times for virtual-time
// substrates: per-channel high-water marks in one flat slice indexed by the
// engine's channel numbering, so the per-message lookup is an array read
// with no hashing or allocation. The zero value of an entry means "no prior
// traffic". Substrates that serialize channels physically (one goroutine
// per channel, as internal/rt does) do not need it.
type FIFOClock struct {
	last []sim.Time
}

// NewFIFOClock returns a clock for the given channel count (ChannelCount).
func NewFIFOClock(channels int) *FIFOClock {
	return &FIFOClock{last: make([]sim.Time, channels)}
}

// Arrival returns the delivery time for a message sent now with the given
// latency on channel ch, clamped so it never precedes an earlier message on
// the same channel, and records it as the channel's new high-water mark.
func (c *FIFOClock) Arrival(ch int, now, latency sim.Time) sim.Time {
	arrival := now + latency
	if last := c.last[ch]; arrival < last {
		arrival = last
	}
	c.last[ch] = arrival
	return arrival
}
