package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec errors.
var (
	// ErrMagic means the stream is not mobiledist wire traffic.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion means the peer speaks a different protocol version.
	ErrVersion = errors.New("wire: version mismatch")
	// ErrType means the frame type byte is out of range.
	ErrType = errors.New("wire: unknown frame type")
	// ErrTruncated means the buffer ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTooLarge means a length prefix exceeds MaxFrame.
	ErrTooLarge = errors.New("wire: frame exceeds size bound")
)

// zigzag maps signed to unsigned the way encoding/binary varints do.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// AppendFrame appends the canonical encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if f.Type == 0 || f.Type >= typeCount {
		return dst, fmt.Errorf("%w: %d", ErrType, uint8(f.Type))
	}
	if len(f.Payload) > MaxFrame/2 {
		return dst, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(f.Payload))
	}
	var tmp [binary.MaxVarintLen64]byte
	body := make([]byte, 0, 16+len(f.Payload))
	body = append(body, tmp[:binary.PutUvarint(tmp[:], zigzag(int64(f.Ch)))]...)
	body = append(body, tmp[:binary.PutUvarint(tmp[:], f.Seq)]...)
	body = append(body, f.Hop)
	body = append(body, tmp[:binary.PutUvarint(tmp[:], uint64(f.Latency))]...)
	body = append(body, tmp[:binary.PutUvarint(tmp[:], uint64(len(f.Payload)))]...)
	body = append(body, f.Payload...)

	dst = append(dst, magic0, magic1, Version, byte(f.Type))
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(body)))]...)
	return append(dst, body...), nil
}

// reader is the minimal cursor shared by slice and stream decoding.
type reader struct {
	b   []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrTruncated
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// decodeBody parses a frame body (everything after the length prefix).
func decodeBody(t Type, b []byte) (Frame, error) {
	r := &reader{b: b}
	f := Frame{Type: t}
	ch, err := r.varint()
	if err != nil {
		return f, err
	}
	f.Ch = int32(ch)
	if f.Seq, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.Hop, err = r.byte(); err != nil {
		return f, err
	}
	lat, err := r.uvarint()
	if err != nil {
		return f, err
	}
	f.Latency = uint32(lat)
	plen, err := r.uvarint()
	if err != nil {
		return f, err
	}
	if plen > uint64(MaxFrame/2) {
		return f, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, plen)
	}
	p, err := r.take(int(plen))
	if err != nil {
		return f, err
	}
	if len(p) > 0 {
		f.Payload = append([]byte(nil), p...)
	}
	if r.off != len(b) {
		return f, fmt.Errorf("wire: %d trailing bytes in %v body", len(b)-r.off, t)
	}
	return f, nil
}

// DecodeFrame parses one frame from the start of b, returning the frame and
// the number of bytes consumed.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Frame{}, 0, ErrMagic
	}
	if b[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, b[2], Version)
	}
	t := Type(b[3])
	if t == 0 || t >= typeCount {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrType, b[3])
	}
	blen, n := binary.Uvarint(b[4:])
	if n <= 0 {
		return Frame{}, 0, ErrTruncated
	}
	if blen > MaxFrame {
		return Frame{}, 0, fmt.Errorf("%w: body %d bytes", ErrTooLarge, blen)
	}
	start := 4 + n
	if uint64(len(b)-start) < blen {
		return Frame{}, 0, ErrTruncated
	}
	f, err := decodeBody(t, b[start:start+int(blen)])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, start + int(blen), nil
}

// Writer frames and writes records onto a stream, flushing after each frame
// (frames are the unit of progress for the runtime; batching would trade
// latency for nothing at these sizes).
type Writer struct {
	w   *bufio.Writer
	buf []byte
	// Tap, when non-nil, observes every frame with its exact wire bytes
	// before it is written. The byte slice is only valid during the call.
	Tap func(raw []byte, f Frame)
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteFrame encodes and writes one frame.
func (w *Writer) WriteFrame(f Frame) error {
	b, err := AppendFrame(w.buf[:0], f)
	if err != nil {
		return err
	}
	w.buf = b[:0]
	if w.Tap != nil {
		w.Tap(b, f)
	}
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader reads frames from a stream.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadFrame blocks for and parses the next frame. Errors are terminal: a
// framing error means the stream lost sync and the connection must drop.
func (r *Reader) ReadFrame() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, ErrMagic
	}
	if hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[2], Version)
	}
	t := Type(hdr[3])
	if t == 0 || t >= typeCount {
		return Frame{}, fmt.Errorf("%w: %d", ErrType, hdr[3])
	}
	blen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Frame{}, err
	}
	if blen > MaxFrame {
		return Frame{}, fmt.Errorf("%w: body %d bytes", ErrTooLarge, blen)
	}
	if uint64(cap(r.buf)) < blen {
		r.buf = make([]byte, blen)
	}
	body := r.buf[:blen]
	if _, err := io.ReadFull(r.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return decodeBody(t, body)
}

// appendUvarint / appendVarint are the payload-blob encoding primitives.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(dst []byte, v int64) []byte {
	return appendUvarint(dst, zigzag(v))
}

// Encode renders the Hello payload blob.
func (h Hello) Encode() []byte {
	b := make([]byte, 0, 12)
	b = append(b, byte(h.Role))
	b = appendVarint(b, int64(h.ID))
	b = appendVarint(b, int64(h.M))
	b = appendVarint(b, int64(h.N))
	return appendUvarint(b, h.Gen)
}

// DecodeHello parses a Hello payload blob.
func DecodeHello(b []byte) (Hello, error) {
	r := &reader{b: b}
	var h Hello
	role, err := r.byte()
	if err != nil {
		return h, err
	}
	h.Role = Role(role)
	if h.Role != RoleMSS && h.Role != RoleMH {
		return h, fmt.Errorf("wire: unknown role %d", role)
	}
	id, err := r.varint()
	if err != nil {
		return h, err
	}
	m, err := r.varint()
	if err != nil {
		return h, err
	}
	n, err := r.varint()
	if err != nil {
		return h, err
	}
	if h.Gen, err = r.uvarint(); err != nil {
		return h, err
	}
	h.ID, h.M, h.N = int32(id), int32(m), int32(n)
	if r.off != len(b) {
		return h, errors.New("wire: trailing bytes in hello")
	}
	return h, nil
}

// Encode renders the Envelope payload blob.
func (e Envelope) Encode() []byte {
	b := make([]byte, 0, 8)
	b = append(b, e.Kind)
	b = appendVarint(b, int64(e.A))
	return appendVarint(b, int64(e.B))
}

// DecodeEnvelope parses an Envelope payload blob.
func DecodeEnvelope(b []byte) (Envelope, error) {
	r := &reader{b: b}
	var e Envelope
	k, err := r.byte()
	if err != nil {
		return e, err
	}
	e.Kind = k
	a, err := r.varint()
	if err != nil {
		return e, err
	}
	bb, err := r.varint()
	if err != nil {
		return e, err
	}
	e.A, e.B = int32(a), int32(bb)
	if r.off != len(b) {
		return e, errors.New("wire: trailing bytes in envelope")
	}
	return e, nil
}

// Encode renders the Handoff payload blob.
func (h Handoff) Encode() []byte {
	b := make([]byte, 0, 16+len(h.Addr))
	b = appendVarint(b, int64(h.MH))
	b = appendVarint(b, int64(h.MSS))
	b = appendVarint(b, int64(h.Prev))
	b = appendUvarint(b, h.Gen)
	b = appendUvarint(b, uint64(len(h.Addr)))
	return append(b, h.Addr...)
}

// DecodeHandoff parses a Handoff payload blob.
func DecodeHandoff(b []byte) (Handoff, error) {
	r := &reader{b: b}
	var h Handoff
	mh, err := r.varint()
	if err != nil {
		return h, err
	}
	mss, err := r.varint()
	if err != nil {
		return h, err
	}
	prev, err := r.varint()
	if err != nil {
		return h, err
	}
	if h.Gen, err = r.uvarint(); err != nil {
		return h, err
	}
	alen, err := r.uvarint()
	if err != nil {
		return h, err
	}
	if alen > 4096 {
		return h, fmt.Errorf("%w: address %d bytes", ErrTooLarge, alen)
	}
	a, err := r.take(int(alen))
	if err != nil {
		return h, err
	}
	h.MH, h.MSS, h.Prev, h.Addr = int32(mh), int32(mss), int32(prev), string(a)
	if r.off != len(b) {
		return h, errors.New("wire: trailing bytes in handoff")
	}
	return h, nil
}
