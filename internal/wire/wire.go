// Package wire defines the binary framing the network runtime
// (internal/netrt) speaks between cluster processes: the hub that hosts the
// engine, the MSS relay nodes on the wired tier, and the MH clients on the
// wireless tier.
//
// A frame is a versioned length-prefixed record:
//
//	offset  field
//	0       magic 'M' 'W'        (2 bytes)
//	2       version              (1 byte, currently 1)
//	3       type                 (1 byte)
//	4       body length          (uvarint)
//	…       body
//
// and the body is a canonical varint tuple in fixed order:
//
//	channel   varint   (flat engine channel id; -1 when not channel-scoped)
//	seq       uvarint  (hub-assigned per-channel sequence number)
//	hop       1 byte   (0 = leaving the hub, 1 = relayed onto the last link)
//	latency   uvarint  (model link latency in ticks)
//	payload   uvarint length + bytes (frame-type-specific blob)
//
// Canonical means minimal: every field has exactly one encoding, so
// encode→decode→re-encode is byte-identical — a property the conformance
// suite asserts on live traffic. The varint idioms (and the
// magic+version header style) follow the trace codec in internal/obs.
//
// Payload blobs are defined here too: Hello (connection handshake),
// Envelope (the model-level classification of a TData frame, derived from
// engine.ChannelLayout), and Handoff (MH retarget/handoff state, carrying
// the address of the next serving MSS).
package wire

import "fmt"

// Version is the protocol version carried in every frame header. Peers
// reject frames from any other version: the cluster is deployed as a unit,
// so version skew is an operator error to surface, not to paper over.
//
// Version history:
//
//	1  initial protocol (THello..TBye)
//	2  crash recovery: THeartbeat and TResync frames, Hello carries an
//	   incarnation generation
const Version = 2

// MaxFrame bounds the wire size of one frame (header + body). Algorithm
// payloads never cross the wire (the engine runs at the hub), so frames are
// small; the bound exists to fail fast on corrupt length prefixes.
const MaxFrame = 1 << 20

// Frame magic: "MW" (mobiledist wire).
const (
	magic0 = 'M'
	magic1 = 'W'
)

// Type discriminates frames.
type Type uint8

// Frame types.
const (
	// THello opens every dialled connection: it identifies the dialler
	// (role + id) and pins the topology (M, N). Payload: Hello.
	THello Type = iota + 1
	// TAttach opens a wireless connection from an MH client to its serving
	// MSS node. Ch carries the MH id; no payload.
	TAttach
	// TData is one model transmission travelling its physical journey:
	// hub → relay (hop 0), relay → destination endpoint (hop 1). Payload:
	// Envelope.
	TData
	// TDelivered confirms that TData (Ch, Seq) reached the far end of its
	// last physical link; the hub then runs the delivery at the model
	// level. No payload.
	TDelivered
	// TRetarget tells an MH client which MSS serves it now (or that it is
	// detached). Payload: Handoff.
	TRetarget
	// TAttached notifies the hub that an MH client completed a wireless
	// attach. Ch carries the MH id; Seq the handoff generation. No payload.
	TAttached
	// TBye asks the receiver to shut down gracefully. No payload.
	TBye
	// THeartbeat probes and answers liveness on a connection. Seq is the
	// sender's beat counter; Hop distinguishes ping (0) from pong (1) —
	// receivers echo a ping back with Hop = 1 and the same Seq. Ch is -1.
	// No payload.
	THeartbeat
	// TResync acknowledges an incarnation to a reattaching peer: the hub
	// sends it after a handshake, carrying the peer's accepted generation in
	// Seq, right before replaying any unconfirmed per-channel outbox suffix.
	// Ch is -1. No payload.
	TResync

	typeCount
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TAttach:
		return "attach"
	case TData:
		return "data"
	case TDelivered:
		return "delivered"
	case TRetarget:
		return "retarget"
	case TAttached:
		return "attached"
	case TBye:
		return "bye"
	case THeartbeat:
		return "heartbeat"
	case TResync:
		return "resync"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Frame is one wire record. Zero values encode compactly (single-byte
// varints), so control frames cost a handful of bytes.
type Frame struct {
	// Type discriminates the frame.
	Type Type
	// Ch is the flat engine channel id for channel-scoped frames (TData,
	// TDelivered) and doubles as the MH id on TAttach/TAttached. -1
	// otherwise.
	Ch int32
	// Seq is the hub-assigned per-channel sequence number of a TData /
	// TDelivered pair, and the handoff generation on TAttached.
	Seq uint64
	// Hop counts physical links already crossed (0 leaving the hub, 1 on
	// the final link).
	Hop uint8
	// Latency is the model link latency in ticks (TData only).
	Latency uint32
	// Payload is the frame-type-specific blob (Hello, Envelope, Handoff).
	Payload []byte
}

// Role identifies a cluster process in a Hello handshake.
type Role uint8

// Cluster roles.
const (
	// RoleMSS is a wired-tier relay node hosting one station's links.
	RoleMSS Role = iota + 1
	// RoleMH is a mobile-host client on the wireless tier.
	RoleMH
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleMSS:
		return "mss"
	case RoleMH:
		return "mh"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Hello is the THello payload: who is dialling and what topology it was
// configured with. The accepting side rejects mismatched topologies so a
// stale cluster file fails loudly at connect time.
//
// Gen is the dialler's incarnation generation: 0 means "unknown, assign me
// one" (the hub synthesizes the next generation), a positive value claims a
// specific incarnation. The hub fences connections whose claimed generation
// is older than the newest it has admitted for that id, so a superseded
// process cannot corrupt its successor's state.
type Hello struct {
	Role Role
	ID   int32
	M, N int32
	Gen  uint64
}

// Envelope classifies a TData frame at the model level: the channel kind
// and endpoints from engine.ChannelLayout.Decode. Relays and clients route
// on it without knowing channel arithmetic; trace tooling reads it to
// attribute wire traffic to model links.
type Envelope struct {
	// Kind is the channel class (engine.ChannelWired/Down/Up as uint8).
	Kind uint8
	// A and B are the kind-specific endpoints: (src,dst) MSS for wired,
	// (mss,mh) for downlinks, (mss,mh) for uplinks.
	A, B int32
}

// Handoff is the TRetarget payload: the mobility protocol's view of where
// an MH is served, plus the physical address to dial. An empty Addr means
// "detach" (the MH disconnected or is between cells).
type Handoff struct {
	// MH is the mobile host being retargeted.
	MH int32
	// MSS is the serving station (-1 when detached).
	MSS int32
	// Prev is the previous station (-1 on initial placement).
	Prev int32
	// Gen is a monotonically increasing handoff generation; clients ignore
	// stale retargets that raced a newer one.
	Gen uint64
	// Addr is the TCP address of the serving MSS node ("" when detached).
	Addr string
}
