package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"mobiledist/internal/sim"
)

// sampleFrames covers every type, negative ids, zero values, and payloads.
func sampleFrames() []Frame {
	return []Frame{
		{Type: THello, Ch: -1, Payload: Hello{Role: RoleMSS, ID: 2, M: 3, N: 5}.Encode()},
		{Type: THello, Ch: -1, Payload: Hello{Role: RoleMH, ID: 0, M: 1, N: 1}.Encode()},
		{Type: THello, Ch: -1, Payload: Hello{Role: RoleMSS, ID: 1, M: 3, N: 5, Gen: 7}.Encode()},
		{Type: TAttach, Ch: 4},
		{Type: TData, Ch: 17, Seq: 0, Hop: 0, Latency: 3, Payload: Envelope{Kind: 1, A: 2, B: 0}.Encode()},
		{Type: TData, Ch: 0, Seq: 1 << 40, Hop: 1, Latency: 4_000_000, Payload: Envelope{Kind: 3, A: 0, B: 7}.Encode()},
		{Type: TDelivered, Ch: 17, Seq: 9},
		{Type: TRetarget, Ch: -1, Payload: Handoff{MH: 3, MSS: 1, Prev: -1, Gen: 12, Addr: "127.0.0.1:4242"}.Encode()},
		{Type: TRetarget, Ch: -1, Payload: Handoff{MH: 3, MSS: -1, Prev: 2, Gen: 13}.Encode()},
		{Type: TAttached, Ch: 3, Seq: 13},
		{Type: TBye, Ch: -1},
		{Type: THeartbeat, Ch: -1, Seq: 42, Hop: 0},
		{Type: THeartbeat, Ch: -1, Seq: 42, Hop: 1},
		{Type: TResync, Ch: -1, Seq: 3},
	}
}

// TestVersionCompatibility pins the version-gate behaviour across the v1→v2
// bump: a v2 peer rejects v1 frames loudly (ErrVersion, on both the slice
// and the stream decoder), instead of misparsing the extended protocol.
func TestVersionCompatibility(t *testing.T) {
	if Version != 2 {
		t.Fatalf("Version = %d; update this test alongside the protocol", Version)
	}
	v2, err := AppendFrame(nil, Frame{Type: THeartbeat, Ch: -1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), v2...)
	v1[2] = 1 // a v1-era peer's header
	if _, _, err := DecodeFrame(v1); !errors.Is(err, ErrVersion) {
		t.Errorf("DecodeFrame(v1 header): err = %v, want ErrVersion", err)
	}
	r := NewReader(bytes.NewReader(v1))
	if _, err := r.ReadFrame(); !errors.Is(err, ErrVersion) {
		t.Errorf("ReadFrame(v1 header): err = %v, want ErrVersion", err)
	}
	// The v1 Hello blob (no generation field) no longer parses: a skewed
	// cluster fails at handshake rather than silently defaulting Gen.
	v1Hello := []byte{byte(RoleMSS)}
	for _, f := range []int64{2, 3, 5} { // id, m, n — zigzag varints
		v1Hello = appendVarint(v1Hello, f)
	}
	if _, err := DecodeHello(v1Hello); err == nil {
		t.Error("v1 hello blob accepted; want truncated-field error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("AppendFrame(%v): %v", f.Type, err)
		}
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("DecodeFrame(%v): %v", f.Type, err)
		}
		if n != len(b) {
			t.Errorf("%v: consumed %d of %d bytes", f.Type, n, len(b))
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", f.Type, got, f)
		}
	}
}

// TestFrameReencodeByteIdentical pins the canonical-encoding property the
// conformance suite relies on: encode→decode→re-encode is the identity on
// bytes.
func TestFrameReencodeByteIdentical(t *testing.T) {
	rng := sim.NewRNG(42)
	frames := sampleFrames()
	for i := 0; i < 200; i++ {
		frames = append(frames, Frame{
			Type:    TData,
			Ch:      int32(rng.Intn(1 << 16)),
			Seq:     uint64(rng.Intn(1 << 30)),
			Hop:     uint8(rng.Intn(2)),
			Latency: uint32(rng.Intn(1 << 20)),
			Payload: Envelope{Kind: uint8(rng.Intn(3) + 1), A: int32(rng.Intn(64)), B: int32(rng.Intn(64))}.Encode(),
		})
	}
	for _, f := range frames {
		b1, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, _, err := DecodeFrame(b1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		b2, err := AppendFrame(nil, dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("re-encode not byte-identical for %+v:\n b1=%x\n b2=%x", f, b1, b2)
		}
	}
}

func TestStreamReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var tapped int
	w.Tap = func(raw []byte, f Frame) {
		tapped++
		if _, _, err := DecodeFrame(raw); err != nil {
			t.Errorf("tap saw undecodable bytes: %v", err)
		}
	}
	frames := sampleFrames()
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("WriteFrame(%v): %v", f.Type, err)
		}
	}
	if tapped != len(frames) {
		t.Errorf("tap saw %d frames, want %d", tapped, len(frames))
	}
	r := NewReader(&buf)
	for _, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame(%v): %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("read past end: err = %v, want io.EOF", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := AppendFrame(nil, Frame{Type: TData, Ch: 3, Seq: 7, Latency: 2, Payload: Envelope{Kind: 1, A: 1, B: 2}.Encode()})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", append([]byte("XY"), good[2:]...), ErrMagic},
		{"bad version", append([]byte{magic0, magic1, 99}, good[3:]...), ErrVersion},
		{"bad type", append([]byte{magic0, magic1, Version, 200}, good[4:]...), ErrType},
		{"zero type", append([]byte{magic0, magic1, Version, 0}, good[4:]...), ErrType},
		{"truncated body", good[:len(good)-2], ErrTruncated},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Oversize length prefix fails fast, before any allocation.
	huge := []byte{magic0, magic1, Version, byte(TData), 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: err = %v, want ErrTooLarge", err)
	}

	if _, err := AppendFrame(nil, Frame{Type: typeCount}); !errors.Is(err, ErrType) {
		t.Errorf("encode unknown type: err = %v, want ErrType", err)
	}
}

func TestPayloadBlobRoundTrips(t *testing.T) {
	h := Hello{Role: RoleMH, ID: 7, M: 3, N: 9}
	gotH, err := DecodeHello(h.Encode())
	if err != nil || gotH != h {
		t.Errorf("hello round trip: %+v, %v (want %+v)", gotH, err, h)
	}
	if _, err := DecodeHello([]byte{9, 0, 0, 0}); err == nil {
		t.Error("bad role accepted")
	}
	if _, err := DecodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}

	e := Envelope{Kind: 2, A: 1, B: 5}
	gotE, err := DecodeEnvelope(e.Encode())
	if err != nil || gotE != e {
		t.Errorf("envelope round trip: %+v, %v (want %+v)", gotE, err, e)
	}

	for _, ho := range []Handoff{
		{MH: 3, MSS: 2, Prev: -1, Gen: 1, Addr: "10.0.0.1:9000"},
		{MH: 0, MSS: -1, Prev: 0, Gen: 1 << 50, Addr: ""},
	} {
		got, err := DecodeHandoff(ho.Encode())
		if err != nil || got != ho {
			t.Errorf("handoff round trip: %+v, %v (want %+v)", got, err, ho)
		}
	}
	if _, err := DecodeHandoff([]byte{0}); err == nil {
		t.Error("truncated handoff accepted")
	}
}
