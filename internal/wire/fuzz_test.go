package wire

// Fuzz targets over the decoders: the framing layer reads bytes straight
// off TCP sockets, so arbitrary input must produce a frame or an error —
// never a panic, an out-of-range slice, or a frame the encoder cannot
// reproduce. `make ci` runs these with a short budget (make fuzz-short);
// longer exploration via `go test -fuzz` directly.

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeFrame checks the frame decoders on arbitrary byte strings.
// Invariants on accepted input: the consumed length is sane, re-encoding
// the decoded frame succeeds and decodes back to the same frame (the
// canonical-form fixpoint), and the streaming Reader agrees with the slice
// decoder byte-for-byte.
func FuzzDecodeFrame(f *testing.F) {
	seedFrames := []Frame{
		{Type: THello, Ch: -1, Payload: Hello{Role: RoleMSS, ID: 3, M: 4, N: 16}.Encode()},
		{Type: TData, Ch: 1234, Seq: 77, Hop: 1, Latency: 9, Payload: Envelope{Kind: 2, A: 1, B: 200}.Encode()},
		{Type: TDelivered, Ch: 5, Seq: 1},
		{Type: TRetarget, Ch: -1, Payload: Handoff{MH: 7, MSS: 2, Prev: -1, Gen: 3, Addr: "127.0.0.1:9"}.Encode()},
		{Type: TBye, Ch: -1},
	}
	for _, fr := range seedFrames {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{magic0, magic1, Version, byte(TData), 0x80})
	f.Add([]byte("MW\x01\x03garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			// Rejected input must also be rejected by the streaming reader
			// (it may block wanting more bytes, but must not yield a frame).
			if sfr, serr := NewReader(bytes.NewReader(data)).ReadFrame(); serr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted %+v", err, sfr)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}

		// Accepted input re-encodes, and the re-encoding decodes to the
		// same frame. (Byte equality with the input is not required: the
		// varint reader tolerates non-minimal encodings that the canonical
		// encoder never emits.)
		enc, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		fr2, n2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if !framesEqual(fr, fr2) {
			t.Fatalf("decode/encode/decode fixpoint broken:\n first %+v\nsecond %+v", fr, fr2)
		}

		// The streaming reader must agree with the slice decoder.
		sfr, serr := NewReader(io.LimitReader(bytes.NewReader(data), int64(n))).ReadFrame()
		if serr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", serr)
		}
		if !framesEqual(fr, sfr) {
			t.Fatalf("slice and stream decoders disagree:\n slice %+v\nstream %+v", fr, sfr)
		}
	})
}

// FuzzPayloadDecoders checks the payload-blob decoders (Hello, Envelope,
// Handoff) on arbitrary byte strings: accepted blobs must survive an
// encode→decode round trip unchanged.
func FuzzPayloadDecoders(f *testing.F) {
	f.Add(Hello{Role: RoleMH, ID: 9, M: 4, N: 16}.Encode())
	f.Add(Envelope{Kind: 1, A: -1, B: 3}.Encode())
	f.Add(Handoff{MH: 1, MSS: -1, Prev: 2, Gen: 8, Addr: "host:1"}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeHello(data); err == nil {
			h2, err := DecodeHello(h.Encode())
			if err != nil || h2 != h {
				t.Fatalf("hello round trip: %+v -> %+v (%v)", h, h2, err)
			}
		}
		if e, err := DecodeEnvelope(data); err == nil {
			e2, err := DecodeEnvelope(e.Encode())
			if err != nil || e2 != e {
				t.Fatalf("envelope round trip: %+v -> %+v (%v)", e, e2, err)
			}
		}
		if h, err := DecodeHandoff(data); err == nil {
			h2, err := DecodeHandoff(h.Encode())
			if err != nil || h2 != h {
				t.Fatalf("handoff round trip: %+v -> %+v (%v)", h, h2, err)
			}
		}
	})
}

// framesEqual compares frames treating nil and empty payloads as equal
// (decodeBody leaves a zero-length payload nil).
func framesEqual(a, b Frame) bool {
	return a.Type == b.Type && a.Ch == b.Ch && a.Seq == b.Seq &&
		a.Hop == b.Hop && a.Latency == b.Latency && bytes.Equal(a.Payload, b.Payload)
}
