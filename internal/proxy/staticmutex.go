package proxy

import (
	"fmt"

	"mobiledist/internal/logical"
	"mobiledist/internal/sim"
)

// Grant is the output a StaticMutex process sends to its mobile host when
// its request acquires the critical section.
type Grant struct {
	Proc int
}

// Release is the output sent when the critical section is relinquished on
// the host's behalf.
type Release struct {
	Proc int
}

// RequestInput is the input a mobile host submits to request the critical
// section.
type RequestInput struct{}

// MutexOptions configure a StaticMutex.
type MutexOptions struct {
	// Hold is how long the critical section is occupied per grant.
	Hold sim.Time
	// OnEnter and OnExit fire at the proxy tier when the critical section
	// is acquired and released — the actual exclusion points (the Grant and
	// Release outputs to the mobile host are asynchronous notifications).
	OnEnter func(p int)
	OnExit  func(p int)
}

// StaticMutex is Lamport's mutual exclusion written as a StaticAlgorithm —
// completely oblivious to mobility. Hosted by the proxy Runtime under
// ScopeHome it becomes an L2-like algorithm automatically; under ScopeLocal
// the proxies migrate with their hosts. This is the paper's Section-5
// demonstration: the same algorithm text serves static and mobile systems.
type StaticMutex struct {
	procs int
	opts  MutexOptions

	env     Env
	engines []*logical.MutexEngine
	grants  int64
}

var _ StaticAlgorithm = (*StaticMutex)(nil)

// NewStaticMutex builds a mutex over procs processes.
func NewStaticMutex(procs int, opts MutexOptions) (*StaticMutex, error) {
	if procs < 1 {
		return nil, fmt.Errorf("proxy: static mutex needs at least one process")
	}
	return &StaticMutex{procs: procs, opts: opts}, nil
}

// Name implements StaticAlgorithm.
func (s *StaticMutex) Name() string { return "static-mutex" }

// Grants reports how many critical-section entries have been granted.
func (s *StaticMutex) Grants() int64 { return s.grants }

// Input implements StaticAlgorithm.
func (s *StaticMutex) Input(env Env, p int, input any) {
	if _, ok := input.(RequestInput); !ok {
		panic(fmt.Sprintf("proxy: static mutex got unexpected input %T", input))
	}
	s.init(env)
	s.engines[p].Request(0)
}

// Handle implements StaticAlgorithm.
func (s *StaticMutex) Handle(env Env, p, from int, msg any) {
	m, ok := msg.(logical.MutexMsg)
	if !ok {
		panic(fmt.Sprintf("proxy: static mutex got unexpected message %T", msg))
	}
	s.init(env)
	s.engines[p].Handle(m)
}

// init lazily builds the per-process engines once the environment is known.
func (s *StaticMutex) init(env Env) {
	if s.engines != nil {
		return
	}
	if env.Procs() != s.procs {
		panic(fmt.Sprintf("proxy: static mutex built for %d procs, hosted with %d", s.procs, env.Procs()))
	}
	s.env = env
	s.engines = make([]*logical.MutexEngine, s.procs)
	for i := 0; i < s.procs; i++ {
		p := i
		s.engines[i] = logical.NewMutexEngine(p, s.procs,
			func(to int, m logical.MutexMsg) { env.Send(p, to, m) },
			func(tag int64, ts logical.Timestamp) { s.granted(p, ts) },
		)
	}
}

func (s *StaticMutex) granted(p int, ts logical.Timestamp) {
	s.grants++
	if s.opts.OnEnter != nil {
		s.opts.OnEnter(p)
	}
	s.env.Output(p, Grant{Proc: p})
	s.env.After(s.opts.Hold, func() {
		if s.opts.OnExit != nil {
			s.opts.OnExit(p)
		}
		if err := s.engines[p].Release(ts); err != nil {
			panic(fmt.Sprintf("proxy: static mutex release: %v", err))
		}
		s.env.Output(p, Release{Proc: p})
	})
}
