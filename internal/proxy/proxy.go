// Package proxy implements the paper's Section-5 framework for decoupling
// host mobility from the design of a distributed algorithm.
//
// Every mobile host is associated with a *proxy* on the static network —
// the MSS that participates in distributed computations on its behalf. A
// proxy association is characterised by two parameters:
//
//   - Scope: which MHs map to a given proxy. With ScopeLocal the proxy is
//     always the MH's current MSS (as in algorithms L2 and R2); with
//     ScopeHome a fixed proxy is associated with the MH for its lifetime
//     and is informed of every move.
//   - Obligations: what the proxy does when its MH leaves mid-computation.
//     A local proxy searches for the departed MH when a result is ready
//     (the L2 obligation); a home proxy forwards results through its
//     location record.
//
// The Runtime lifts any StaticAlgorithm — an algorithm written for static,
// message-passing processes — to mobile participants by executing process p
// at the proxy of MH p. With ScopeHome this achieves the paper's "total
// separation of mobility from the algorithm" at the price of per-move
// inform traffic; with ScopeLocal no inform traffic flows, but
// inter-process messages pay search costs and handoffs migrate state.
package proxy

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// ScopeKind selects how mobile hosts map to proxies.
type ScopeKind int

// Proxy scopes.
const (
	// ScopeLocal makes the MH's current MSS its proxy; moving hands the
	// proxy state over to the new MSS.
	ScopeLocal ScopeKind = iota + 1
	// ScopeHome fixes the proxy at the MH's initial MSS for its lifetime;
	// every move is reported to the proxy.
	ScopeHome
)

// String returns the scope name.
func (k ScopeKind) String() string {
	switch k {
	case ScopeLocal:
		return "local"
	case ScopeHome:
		return "home"
	default:
		return fmt.Sprintf("ScopeKind(%d)", int(k))
	}
}

// Env is the environment a StaticAlgorithm's processes use to communicate.
// The proxy runtime implements it; processes never observe mobility.
type Env interface {
	// Procs returns the number of processes.
	Procs() int
	// Send delivers msg from process from to process to (asynchronously,
	// FIFO per ordered pair).
	Send(from, to int, msg any)
	// Output delivers out to the mobile host behind process p.
	Output(p int, out any)
	// After schedules fn on the runtime after d.
	After(d sim.Time, fn func())
}

// StaticAlgorithm is a distributed algorithm written for static
// message-passing processes, oblivious to mobility. One process runs per
// participating MH, hosted at that MH's proxy.
type StaticAlgorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Handle processes a message from a peer process.
	Handle(env Env, p, from int, msg any)
	// Input processes a request arriving from process p's mobile host.
	Input(env Env, p int, input any)
}

// Options configure a proxy runtime.
type Options struct {
	// Scope selects the proxy association.
	Scope ScopeKind
	// InformEvery, under ScopeHome, reports only every k-th move to the
	// proxy (k >= 1; 0 behaves as 1). The paper closes Section 5 observing
	// that informing the proxy of *every* move "may be infeasible from a
	// practical standpoint" for fast movers; lazy informing trades inform
	// traffic for occasional stale-location searches on output delivery.
	InformEvery int
	// OnOutput fires when an algorithm output reaches its mobile host.
	OnOutput func(mh core.MHID, out any)
}

// Protocol messages of the proxy runtime.
type (
	// pxInput carries a MH's input up to its local MSS.
	pxInput struct {
		In any
	}

	// pxInputFwd forwards an input from the receiving MSS to a home proxy.
	pxInputFwd struct {
		Proc int
		In   any
	}

	// pxProc is an inter-process message between proxies.
	pxProc struct {
		FromProc, ToProc int
		M                any
	}

	// pxOutput carries an algorithm output down to the mobile host.
	pxOutput struct {
		Out any
	}

	// pxMoveReport tells a home proxy where its MH now is.
	pxMoveReport struct {
		Proc int
		At   core.MSSID
	}

	// pxHandoffReq asks the previous proxy for process state (local scope).
	pxHandoffReq struct {
		Proc   int
		NewMSS core.MSSID
	}

	// pxHandoffState carries the (logical) process state to the new proxy.
	pxHandoffState struct {
		Proc int
	}
)

// Runtime hosts a StaticAlgorithm's processes at the proxies of the
// participating mobile hosts.
type Runtime struct {
	ctx          core.Context
	alg          StaticAlgorithm
	opts         Options
	participants []core.MHID
	index        map[core.MHID]int

	// host is where each process currently executes: the fixed home proxy
	// under ScopeHome, the MH's current MSS under ScopeLocal.
	host []core.MSSID
	// lastLoc is the home proxy's record of its MH's location (ScopeHome).
	lastLoc []core.MSSID
	// movesSinceReport drives lazy informing (ScopeHome, InformEvery > 1).
	movesSinceReport []int

	moveReports int64
	handoffs    int64
	outputs     int64
}

var (
	_ core.Algorithm        = (*Runtime)(nil)
	_ core.MSSHandler       = (*Runtime)(nil)
	_ core.MHHandler        = (*Runtime)(nil)
	_ core.MobilityObserver = (*Runtime)(nil)
	_ Env                   = (*Runtime)(nil)
)

// New registers a proxy runtime hosting alg for the given participants.
// Under ScopeHome each MH's initial MSS becomes its lifetime proxy.
func New(reg core.Registrar, alg StaticAlgorithm, participants []core.MHID, opts Options) (*Runtime, error) {
	if alg == nil {
		return nil, fmt.Errorf("proxy: nil algorithm")
	}
	switch opts.Scope {
	case ScopeLocal, ScopeHome:
	default:
		return nil, fmt.Errorf("proxy: unknown scope %d", int(opts.Scope))
	}
	if len(participants) == 0 {
		return nil, fmt.Errorf("proxy: no participants")
	}
	r := &Runtime{
		alg:          alg,
		opts:         opts,
		participants: append([]core.MHID(nil), participants...),
		index:        make(map[core.MHID]int, len(participants)),
	}
	for i, mh := range r.participants {
		if _, dup := r.index[mh]; dup {
			return nil, fmt.Errorf("proxy: duplicate participant mh%d", int(mh))
		}
		r.index[mh] = i
	}
	if opts.InformEvery < 0 {
		return nil, fmt.Errorf("proxy: negative InformEvery")
	}
	if r.opts.InformEvery == 0 {
		r.opts.InformEvery = 1
	}
	r.ctx = reg.Register(r)
	r.host = make([]core.MSSID, len(r.participants))
	r.lastLoc = make([]core.MSSID, len(r.participants))
	r.movesSinceReport = make([]int, len(r.participants))
	locs := initialCells(r.ctx, r.index)
	for i := range r.participants {
		r.host[i] = locs[i]
		r.lastLoc[i] = locs[i]
	}
	return r, nil
}

// initialCells maps each participant slot to its current cell.
func initialCells(ctx core.Context, index map[core.MHID]int) []core.MSSID {
	out := make([]core.MSSID, len(index))
	for m := 0; m < ctx.M(); m++ {
		for _, mh := range ctx.LocalMHs(core.MSSID(m)) {
			if slot, ok := index[mh]; ok {
				out[slot] = core.MSSID(m)
			}
		}
	}
	return out
}

// Name implements core.Algorithm.
func (r *Runtime) Name() string { return "proxy/" + r.opts.Scope.String() + "/" + r.alg.Name() }

// MoveReports reports location reports sent to home proxies.
func (r *Runtime) MoveReports() int64 { return r.moveReports }

// Handoffs reports proxy-state handoffs between MSSs (local scope).
func (r *Runtime) Handoffs() int64 { return r.handoffs }

// Outputs reports algorithm outputs delivered to mobile hosts.
func (r *Runtime) Outputs() int64 { return r.outputs }

// Input submits input from mh to its process.
func (r *Runtime) Input(mh core.MHID, input any) error {
	if _, ok := r.index[mh]; !ok {
		return fmt.Errorf("proxy: mh%d is not a participant", int(mh))
	}
	if err := r.ctx.SendFromMH(mh, pxInput{In: input}, cost.CatAlgorithm); err != nil {
		return fmt.Errorf("proxy: input: %w", err)
	}
	return nil
}

// HandleMSS implements core.MSSHandler.
func (r *Runtime) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	switch m := msg.(type) {
	case pxInput:
		if !from.IsMH {
			panic("proxy: pxInput must come from a MH")
		}
		p, ok := r.index[from.MH]
		if !ok {
			panic(fmt.Sprintf("proxy: input from non-participant mh%d", int(from.MH)))
		}
		if r.opts.Scope == ScopeHome && r.host[p] != at {
			// Forward the input to the lifetime proxy.
			ctx.SendFixed(at, r.host[p], pxInputFwd{Proc: p, In: m.In}, cost.CatAlgorithm)
			return
		}
		r.alg.Input(r, p, m.In)
	case pxInputFwd:
		r.alg.Input(r, m.Proc, m.In)
	case pxProc:
		r.alg.Handle(r, m.ToProc, m.FromProc, m.M)
	case pxMoveReport:
		r.lastLoc[m.Proc] = m.At
	case pxHandoffReq:
		if r.host[m.Proc] == at {
			// This MSS holds the process state; ship it to the new proxy.
			ctx.SendFixed(at, m.NewMSS, pxHandoffState{Proc: m.Proc}, cost.CatLocation)
			return
		}
		// The state moved on before this request arrived (a rapid second
		// move); chase it.
		ctx.SendFixed(at, r.host[m.Proc], m, cost.CatLocation)
	case pxHandoffState:
		r.host[m.Proc] = at
		r.handoffs++
	default:
		panic(fmt.Sprintf("proxy: MSS received unexpected message %T", msg))
	}
}

// HandleMH implements core.MHHandler.
func (r *Runtime) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(pxOutput)
	if !ok {
		panic(fmt.Sprintf("proxy: MH received unexpected message %T", msg))
	}
	r.outputs++
	if r.opts.OnOutput != nil {
		r.opts.OnOutput(at, m.Out)
	}
}

// OnJoin implements core.MobilityObserver: home proxies are informed of the
// move; local proxies hand process state over to the new MSS.
func (r *Runtime) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	p, ok := r.index[mh]
	if !ok {
		return
	}
	switch r.opts.Scope {
	case ScopeHome:
		r.movesSinceReport[p]++
		if r.movesSinceReport[p] < r.opts.InformEvery {
			return // lazy informing: skip this move's report
		}
		r.movesSinceReport[p] = 0
		r.moveReports++
		ctx.SendFixed(mss, r.host[p], pxMoveReport{Proc: p, At: mss}, cost.CatLocation)
	case ScopeLocal:
		// New MSS requests the process state from the previous proxy; the
		// pxHandoffReq is addressed to the previous *cell* which relays to
		// wherever the state actually is (it may lag by a move).
		ctx.SendFixed(mss, prev, pxHandoffReq{Proc: p, NewMSS: mss}, cost.CatLocation)
	}
}

// OnLeave implements core.MobilityObserver.
func (r *Runtime) OnLeave(core.Context, core.MSSID, core.MHID) {}

// OnDisconnect implements core.MobilityObserver.
func (r *Runtime) OnDisconnect(core.Context, core.MSSID, core.MHID) {}

// Procs implements Env.
func (r *Runtime) Procs() int { return len(r.participants) }

// Send implements Env: inter-process messages travel proxy to proxy. Under
// ScopeHome both endpoints are fixed, so this is one Cfixed hop; under
// ScopeLocal the destination proxy moves with its MH and must be located,
// so the message is routed with a search to the MH's current MSS.
func (r *Runtime) Send(from, to int, msg any) {
	m := pxProc{FromProc: from, ToProc: to, M: msg}
	switch r.opts.Scope {
	case ScopeHome:
		r.ctx.SendFixed(r.host[from], r.host[to], m, cost.CatAlgorithm)
	case ScopeLocal:
		r.ctx.SendToMSSOfMH(r.host[from], r.participants[to], m, cost.CatAlgorithm)
	}
}

// Output implements Env: results travel from the proxy to the mobile host.
// A home proxy routes through its location record (no search); a local
// proxy delivers over its own cell or, if the MH left meanwhile, honours
// its obligation and searches for it.
func (r *Runtime) Output(p int, out any) {
	mh := r.participants[p]
	m := pxOutput{Out: out}
	switch r.opts.Scope {
	case ScopeHome:
		r.ctx.SendToMHVia(r.host[p], r.lastLoc[p], mh, m, cost.CatAlgorithm)
	case ScopeLocal:
		if err := r.ctx.SendToLocalMH(r.host[p], mh, m, cost.CatAlgorithm); err != nil {
			r.ctx.SendToMH(r.host[p], mh, m, cost.CatAlgorithm)
		}
	}
}

// After implements Env.
func (r *Runtime) After(d sim.Time, fn func()) { r.ctx.After(d, fn) }
