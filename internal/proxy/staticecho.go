package proxy

import "fmt"

// StaticEcho is a second mobility-oblivious algorithm for the Section-5
// adapter, demonstrating that the proxy runtime is not specific to mutual
// exclusion: a classic echo (gather/broadcast) round. Any host can start a
// round through its process; process 0 acts as the root, collects one echo
// from every peer, and broadcasts the completion, which each proxy reports
// to its mobile host.
//
// With home scope the entire round runs on the fixed network regardless of
// how the hosts roam — the paper's structuring principle applied to a
// different algorithm with zero changes to the adapter.
type StaticEcho struct {
	env     Env
	pending int  // echoes the root still awaits in the current round
	active  bool // a round is in progress
	rounds  int64
}

// Echo protocol messages and I/O.
type (
	// StartEchoInput asks a process to initiate a round.
	StartEchoInput struct{}

	// echoRequest asks the root (process 0) to run a round.
	echoRequest struct{}

	// echoProbe is the root's broadcast to all peers.
	echoProbe struct{}

	// echoReply is a peer's echo back to the root.
	echoReply struct{}

	// echoDone is the completion broadcast.
	echoDone struct{}

	// RoundComplete is the output delivered to every mobile host.
	RoundComplete struct {
		Round int64
	}
)

var _ StaticAlgorithm = (*StaticEcho)(nil)

// NewStaticEcho builds an echo algorithm.
func NewStaticEcho() *StaticEcho { return &StaticEcho{} }

// Name implements StaticAlgorithm.
func (s *StaticEcho) Name() string { return "static-echo" }

// Rounds reports completed echo rounds.
func (s *StaticEcho) Rounds() int64 { return s.rounds }

// Input implements StaticAlgorithm.
func (s *StaticEcho) Input(env Env, p int, input any) {
	if _, ok := input.(StartEchoInput); !ok {
		panic(fmt.Sprintf("proxy: static echo got unexpected input %T", input))
	}
	s.env = env
	if p == 0 {
		s.startRound(env)
		return
	}
	env.Send(p, 0, echoRequest{})
}

// Handle implements StaticAlgorithm.
func (s *StaticEcho) Handle(env Env, p, from int, msg any) {
	s.env = env
	switch msg.(type) {
	case echoRequest:
		if p != 0 {
			panic("proxy: echo request at non-root")
		}
		s.startRound(env)
	case echoProbe:
		env.Send(p, 0, echoReply{})
	case echoReply:
		if p != 0 || !s.active {
			return
		}
		s.pending--
		if s.pending > 0 {
			return
		}
		s.active = false
		s.rounds++
		for peer := 1; peer < env.Procs(); peer++ {
			env.Send(0, peer, echoDone{})
		}
		env.Output(0, RoundComplete{Round: s.rounds})
	case echoDone:
		env.Output(p, RoundComplete{Round: s.rounds})
	default:
		panic(fmt.Sprintf("proxy: static echo got unexpected message %T", msg))
	}
}

// startRound begins a gather at the root; concurrent start requests join
// the in-flight round.
func (s *StaticEcho) startRound(env Env) {
	if s.active {
		return
	}
	if env.Procs() == 1 {
		s.rounds++
		env.Output(0, RoundComplete{Round: s.rounds})
		return
	}
	s.active = true
	s.pending = env.Procs() - 1
	for peer := 1; peer < env.Procs(); peer++ {
		env.Send(0, peer, echoProbe{})
	}
}
