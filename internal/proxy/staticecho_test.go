package proxy

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/sim"
)

func runEcho(t *testing.T, scope ScopeKind, moves bool) (*StaticEcho, map[core.MHID]int) {
	t.Helper()
	const (
		m = 4
		n = 5
	)
	sys := newTestSystem(t, m, n)
	echo := NewStaticEcho()
	completions := make(map[core.MHID]int)
	rt, err := New(sys, echo, participants(n), Options{
		Scope: scope,
		OnOutput: func(mh core.MHID, out any) {
			if _, ok := out.(RoundComplete); ok {
				completions[mh]++
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A non-root host starts the round.
	if err := rt.Input(core.MHID(3), StartEchoInput{}); err != nil {
		t.Fatalf("Input: %v", err)
	}
	if moves {
		for i := 0; i < n; i++ {
			mh := core.MHID(i)
			to := core.MSSID((i + 1) % m)
			sys.Schedule(sim.Time(20+i*15), func() {
				if _, st := sys.Where(mh); st == core.StatusConnected {
					_ = sys.Move(mh, to)
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return echo, completions
}

func TestStaticEchoHomeScope(t *testing.T) {
	echo, completions := runEcho(t, ScopeHome, false)
	if echo.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", echo.Rounds())
	}
	for i := 0; i < 5; i++ {
		if completions[core.MHID(i)] != 1 {
			t.Errorf("mh%d completions = %d, want 1", i, completions[core.MHID(i)])
		}
	}
}

func TestStaticEchoLocalScopeWithMobility(t *testing.T) {
	echo, completions := runEcho(t, ScopeLocal, true)
	if echo.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", echo.Rounds())
	}
	var total int
	for _, c := range completions {
		total += c
	}
	if total != 5 {
		t.Errorf("completion outputs = %d, want 5", total)
	}
}

func TestStaticEchoConcurrentStartsJoinOneRound(t *testing.T) {
	sys := newTestSystem(t, 3, 4)
	echo := NewStaticEcho()
	rt, err := New(sys, echo, participants(4), Options{Scope: ScopeHome})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := rt.Input(core.MHID(i), StartEchoInput{}); err != nil {
			t.Fatalf("Input: %v", err)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All four starts land while the first round is active (or after it
	// completed); at most... the root coalesces concurrent requests, so the
	// number of rounds must be between 1 and 4 and every round completes.
	if echo.Rounds() < 1 || echo.Rounds() > 4 {
		t.Errorf("rounds = %d, want within [1,4]", echo.Rounds())
	}
}

func TestStaticEchoSingleProcess(t *testing.T) {
	sys := newTestSystem(t, 2, 1)
	echo := NewStaticEcho()
	var outs int
	rt, err := New(sys, echo, participants(1), Options{
		Scope:    ScopeHome,
		OnOutput: func(core.MHID, any) { outs++ },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Input(core.MHID(0), StartEchoInput{}); err != nil {
		t.Fatalf("Input: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if echo.Rounds() != 1 || outs != 1 {
		t.Errorf("rounds=%d outs=%d, want 1/1", echo.Rounds(), outs)
	}
}
