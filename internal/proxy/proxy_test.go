package proxy

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

func newTestSystem(t *testing.T, m, n int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.DefaultConfig(m, n))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func participants(n int) []core.MHID {
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

// grantTracker verifies mutual exclusion at the proxy tier, where the
// critical section is actually held, and counts the asynchronous Grant
// notifications reaching the mobile hosts.
type grantTracker struct {
	t       *testing.T
	holders int
	grants  int
	notices int
}

func (g *grantTracker) mutexOptions(hold sim.Time) MutexOptions {
	return MutexOptions{
		Hold: hold,
		OnEnter: func(p int) {
			g.holders++
			g.grants++
			if g.holders > 1 {
				g.t.Errorf("mutual exclusion violated when proc %d entered", p)
			}
		},
		OnExit: func(p int) { g.holders-- },
	}
}

func (g *grantTracker) onOutput(mh core.MHID, out any) {
	if _, ok := out.(Grant); ok {
		g.notices++
	}
}

func runMutexScope(t *testing.T, scope ScopeKind, moves bool) (*Runtime, *core.System, *grantTracker) {
	t.Helper()
	const (
		m = 4
		n = 6
	)
	sys := newTestSystem(t, m, n)
	tracker := &grantTracker{t: t}
	sm, err := NewStaticMutex(n, tracker.mutexOptions(5))
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := New(sys, sm, participants(n), Options{Scope: scope, OnOutput: tracker.onOutput})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		if err := rt.Input(mh, RequestInput{}); err != nil {
			t.Fatalf("Input: %v", err)
		}
	}
	if moves {
		for i := 0; i < n; i++ {
			mh := core.MHID(i)
			to := core.MSSID((i + 1) % m)
			sys.Schedule(30, func() {
				if at, st := sys.Where(mh); st == core.StatusConnected && at != to {
					if err := sys.Move(mh, to); err != nil {
						t.Errorf("Move: %v", err)
					}
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rt, sys, tracker
}

func TestStaticMutexUnderHomeScope(t *testing.T) {
	rt, _, tracker := runMutexScope(t, ScopeHome, false)
	if tracker.grants != 6 {
		t.Errorf("grants = %d, want 6", tracker.grants)
	}
	if rt.Outputs() != 12 {
		t.Errorf("outputs = %d, want 12 (grant+release each)", rt.Outputs())
	}
}

func TestStaticMutexUnderLocalScope(t *testing.T) {
	_, _, tracker := runMutexScope(t, ScopeLocal, false)
	if tracker.grants != 6 {
		t.Errorf("grants = %d, want 6", tracker.grants)
	}
}

func TestStaticMutexWithMobilityHomeScope(t *testing.T) {
	rt, _, tracker := runMutexScope(t, ScopeHome, true)
	if tracker.grants != 6 {
		t.Errorf("grants = %d, want 6", tracker.grants)
	}
	if rt.MoveReports() == 0 {
		t.Error("expected move reports under home scope with mobility")
	}
	if rt.Handoffs() != 0 {
		t.Errorf("handoffs = %d, want 0 under home scope", rt.Handoffs())
	}
}

func TestStaticMutexWithMobilityLocalScope(t *testing.T) {
	rt, _, tracker := runMutexScope(t, ScopeLocal, true)
	if tracker.grants != 6 {
		t.Errorf("grants = %d, want 6", tracker.grants)
	}
	if rt.Handoffs() == 0 {
		t.Error("expected handoffs under local scope with mobility")
	}
	if rt.MoveReports() != 0 {
		t.Errorf("move reports = %d, want 0 under local scope", rt.MoveReports())
	}
}

func TestHomeScopeAvoidsSearchesLocalScopePaysThem(t *testing.T) {
	const (
		m = 4
		n = 6
	)
	run := func(scope ScopeKind) int64 {
		sys := newTestSystem(t, m, n)
		sm, err := NewStaticMutex(n, MutexOptions{Hold: 5})
		if err != nil {
			t.Fatalf("NewStaticMutex: %v", err)
		}
		rt, err := New(sys, sm, participants(n), Options{Scope: scope})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := rt.Input(core.MHID(0), RequestInput{}); err != nil {
			t.Fatalf("Input: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().Count(cost.CatAlgorithm, cost.KindSearch)
	}
	if got := run(ScopeHome); got != 0 {
		t.Errorf("home scope searches = %d, want 0", got)
	}
	if got := run(ScopeLocal); got == 0 {
		t.Error("local scope searches = 0, want > 0 (inter-proxy messages must locate peers)")
	}
}

func TestHomeScopeInformCostGrowsWithMobility(t *testing.T) {
	const (
		m = 5
		n = 4
	)
	run := func(moves int) float64 {
		sys := newTestSystem(t, m, n)
		sm, err := NewStaticMutex(n, MutexOptions{Hold: 2})
		if err != nil {
			t.Fatalf("NewStaticMutex: %v", err)
		}
		rt, err := New(sys, sm, participants(n), Options{Scope: ScopeHome})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		_ = rt
		var at core.MSSID
		for i := 0; i < moves; i++ {
			at = core.MSSID((i + 1) % m)
			target := at
			sys.Schedule(sim.Time(100+500*i), func() {
				if cur, st := sys.Where(core.MHID(0)); st == core.StatusConnected && cur != target {
					if err := sys.Move(core.MHID(0), target); err != nil {
						t.Errorf("Move: %v", err)
					}
				}
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().CategoryCost(cost.CatLocation, sys.Config().Params)
	}
	if c2, c8 := run(2), run(8); c8 <= c2 {
		t.Errorf("inform cost did not grow with mobility: %v (2 moves) vs %v (8 moves)", c2, c8)
	}
}

func TestProxyInputFromNonParticipant(t *testing.T) {
	sys := newTestSystem(t, 3, 5)
	sm, err := NewStaticMutex(3, MutexOptions{Hold: 1})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := New(sys, sm, participants(3), Options{Scope: ScopeHome})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Input(core.MHID(4), RequestInput{}); err == nil {
		t.Error("Input from non-participant succeeded, want error")
	}
}

func TestProxyRejectsBadConfig(t *testing.T) {
	sys := newTestSystem(t, 3, 5)
	sm, err := NewStaticMutex(2, MutexOptions{Hold: 1})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	if _, err := New(sys, sm, nil, Options{Scope: ScopeHome}); err == nil {
		t.Error("New with no participants succeeded, want error")
	}
	if _, err := New(sys, sm, participants(2), Options{Scope: 0}); err == nil {
		t.Error("New with zero scope succeeded, want error")
	}
	if _, err := New(sys, nil, participants(2), Options{Scope: ScopeHome}); err == nil {
		t.Error("New with nil algorithm succeeded, want error")
	}
	if _, err := New(sys, sm, []core.MHID{0, 0}, Options{Scope: ScopeHome}); err == nil {
		t.Error("New with duplicate participants succeeded, want error")
	}
}
