package proxy

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// lazyTrial runs a home-scope static mutex under heavy mobility with the
// given inform period and returns (inform messages, stale searches).
func lazyTrial(t *testing.T, informEvery int) (int64, int64) {
	t.Helper()
	const (
		m     = 6
		n     = 4
		moves = 6
	)
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = 11
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sm, err := NewStaticMutex(n, MutexOptions{Hold: 3})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := New(sys, sm, participants(n), Options{Scope: ScopeHome, InformEvery: informEvery})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		mh := core.MHID(i)
		for mv := 0; mv < moves; mv++ {
			to := core.MSSID((i + mv + 1) % m)
			sys.Schedule(sim.Time(200+mv*400), func() {
				if _, st := sys.Where(mh); st == core.StatusConnected {
					_ = sys.Move(mh, to)
				}
			})
		}
		sys.Schedule(sim.Time(300+i*500), func() {
			if _, st := sys.Where(mh); st == core.StatusConnected {
				_ = rt.Input(mh, RequestInput{})
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sm.Grants() == 0 {
		t.Fatal("no grants under lazy informing")
	}
	return rt.MoveReports(), sys.Meter().Count(cost.CatStale, cost.KindSearch)
}

func TestLazyInformReducesReports(t *testing.T) {
	eager, _ := lazyTrial(t, 1)
	lazy, _ := lazyTrial(t, 4)
	if lazy >= eager {
		t.Errorf("lazy informing (%d reports) did not reduce eager (%d)", lazy, eager)
	}
	if lazy == 0 {
		t.Error("lazy informing sent no reports at all")
	}
}

func TestLazyInformStillDeliversOutputs(t *testing.T) {
	// Even with very lazy informing the outputs must reach the hosts (via
	// stale-search fallback); correctness is preserved, only cost moves.
	const informEvery = 8
	cfg := core.DefaultConfig(5, 3)
	cfg.Seed = 13
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var outputs int
	sm, err := NewStaticMutex(3, MutexOptions{Hold: 2})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	rt, err := New(sys, sm, participants(3), Options{
		Scope:       ScopeHome,
		InformEvery: informEvery,
		OnOutput:    func(core.MHID, any) { outputs++ },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Move mh0 far from home, never reporting, then request.
	if err := sys.Move(core.MHID(0), core.MSSID(4)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	sys.Schedule(500, func() {
		if err := rt.Input(core.MHID(0), RequestInput{}); err != nil {
			t.Errorf("Input: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outputs != 2 { // grant + release notifications
		t.Errorf("outputs = %d, want 2", outputs)
	}
	if rt.MoveReports() != 0 {
		t.Errorf("reports = %d, want 0 (one move, period 8)", rt.MoveReports())
	}
	if got := sys.Meter().Count(cost.CatStale, cost.KindSearch); got == 0 {
		t.Error("expected stale searches when the location record is cold")
	}
}

func TestProxyRejectsNegativeInformEvery(t *testing.T) {
	sys := newTestSystem(t, 3, 3)
	sm, err := NewStaticMutex(2, MutexOptions{Hold: 1})
	if err != nil {
		t.Fatalf("NewStaticMutex: %v", err)
	}
	if _, err := New(sys, sm, participants(2), Options{Scope: ScopeHome, InformEvery: -1}); err == nil {
		t.Error("negative InformEvery accepted")
	}
}
