package nemesis

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"mobiledist/internal/sim"
)

// The UDP nemesis is the datagram sibling of the TCP proxy: where the
// stream proxy disturbs byte quanta, this one disturbs whole datagrams —
// drop, duplicate, reorder (a held, late re-send), and per-packet delay —
// the loss modes internal/dgram's replay window and selective retransmit
// exist to absorb.
//
// Determinism: the fate of a datagram is a pure function of
// (UDPPlan.Seed, flow index, direction, packet index) — not of timing, not
// of payload, not of what happened to other packets. Every datagram gets a
// fresh splitmix-seeded draw chain keyed by those four values, with a fixed
// draw order (drop, duplicate, reorder, delay), so two runs pushing the
// same packet sequence through the same plan produce byte-identical
// disturbance logs. Disturbances() returns the log in canonical
// (flow, dir, index) order to make that comparison trivial.

// UDPPlan declares per-datagram disturbances. The zero value disturbs
// nothing.
type UDPPlan struct {
	// Seed keys every fate draw.
	Seed uint64 `json:"seed"`
	// Drop is the per-datagram drop probability.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the per-datagram probability of forwarding twice — the
	// second copy departs immediately and may overtake a delayed original.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the per-datagram probability of holding the datagram for
	// ReorderDelayUS before forwarding, letting later traffic overtake it.
	Reorder float64 `json:"reorder,omitempty"`
	// ReorderDelayUS is how long a reordered datagram is held (0: 2000µs).
	ReorderDelayUS int64 `json:"reorder_delay_us,omitempty"`
	// DelayMinUS/DelayMaxUS bound the per-datagram injected latency in
	// microseconds (both 0: none).
	DelayMinUS int64 `json:"delay_min_us,omitempty"`
	DelayMaxUS int64 `json:"delay_max_us,omitempty"`
}

// Validate checks the plan's parameters.
func (p UDPPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"duplicate", p.Duplicate}, {"reorder", p.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("nemesis: %s probability %v out of [0,1]", pr.name, pr.v)
		}
	}
	if p.ReorderDelayUS < 0 {
		return fmt.Errorf("nemesis: negative reorder delay %d", p.ReorderDelayUS)
	}
	if p.DelayMinUS < 0 || p.DelayMaxUS < p.DelayMinUS {
		return fmt.Errorf("nemesis: bad delay range [%d, %d]", p.DelayMinUS, p.DelayMaxUS)
	}
	return nil
}

func (p UDPPlan) reorderDelay() time.Duration {
	if p.ReorderDelayUS <= 0 {
		return 2 * time.Millisecond
	}
	return time.Duration(p.ReorderDelayUS) * time.Microsecond
}

// udpFate is one datagram's drawn fate.
type udpFate struct {
	drop, dup, reorder bool
	delayUS            int64
}

// fate draws the disturbance for one datagram. Pure in (Seed, flow, dir,
// index): the chain is re-seeded per packet, so the fate never depends on
// processing order or on other packets.
func (p UDPPlan) fate(flow int, dir Direction, index uint64) udpFate {
	rng := sim.NewRNG(streamKey(p.Seed, flow, dir) + (index+1)*0x9E3779B97F4A7C15)
	var f udpFate
	f.drop = p.Drop > 0 && rng.Float64() < p.Drop
	f.dup = p.Duplicate > 0 && rng.Float64() < p.Duplicate
	f.reorder = p.Reorder > 0 && rng.Float64() < p.Reorder
	if p.DelayMaxUS > 0 {
		f.delayUS = p.DelayMinUS
		if span := p.DelayMaxUS - p.DelayMinUS; span > 0 {
			f.delayUS += rng.Int63n(span + 1)
		}
	}
	return f
}

// UDPDisturbance is one logged datagram fate — the determinism witness.
type UDPDisturbance struct {
	// Flow is the client flow index (order of first datagram seen); Dir the
	// direction; Index the datagram's per-(flow, dir) arrival index.
	Flow  int
	Dir   Direction
	Index uint64
	// Kind is "drop", "duplicate", "reorder", or "latency".
	Kind string
	// Amount is kind-specific: dropped/duplicated bytes, or microseconds
	// for reorder/latency.
	Amount int64
}

// String formats the disturbance for test diffs.
func (d UDPDisturbance) String() string {
	return fmt.Sprintf("flow%d/%s p%d %s %d", d.Flow, d.Dir, d.Index, d.Kind, d.Amount)
}

// udpFlow is one client's relay state: a dedicated upstream socket toward
// the target (so replies route back to the right client) and per-direction
// packet counters.
type udpFlow struct {
	idx    int
	client net.UDPAddr
	up     *net.UDPConn
	upIdx  uint64 // client→target datagrams seen (proxy-side counter)
}

// UDPProxy fronts one UDP target: datagrams from any client are relayed
// with the plan's fates applied per packet, replies are relayed back.
type UDPProxy struct {
	plan   UDPPlan
	target *net.UDPAddr
	pc     *net.UDPConn

	mu     sync.Mutex
	flows  map[string]*udpFlow
	log    []UDPDisturbance
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewUDP starts a datagram proxy on 127.0.0.1:0 relaying to target.
func NewUDP(target string, plan UDPPlan) (*UDPProxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	taddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	laddr, _ := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	p := &UDPProxy{
		plan:   plan,
		target: taddr,
		pc:     pc,
		flows:  make(map[string]*udpFlow),
		done:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.readLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the disturbed side dials
// instead of the target.
func (p *UDPProxy) Addr() string { return p.pc.LocalAddr().String() }

// Target returns the address the proxy relays to.
func (p *UDPProxy) Target() string { return p.target.String() }

// Disturbances returns the log in canonical (flow, dir, index, kind) order,
// so two runs of the same plan over the same packet sequence compare
// byte-for-byte.
func (p *UDPProxy) Disturbances() []UDPDisturbance {
	p.mu.Lock()
	out := make([]UDPDisturbance, len(p.log))
	copy(out, p.log)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Kind < b.Kind
	})
	return out
}

// Stop closes the proxy socket and every flow's upstream socket, then waits
// for all relay goroutines (including pending delayed sends).
func (p *UDPProxy) Stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	flows := make([]*udpFlow, 0, len(p.flows))
	for _, f := range p.flows {
		flows = append(flows, f)
	}
	p.mu.Unlock()
	close(p.done)
	p.pc.Close()
	for _, f := range flows {
		f.up.Close()
	}
	p.wg.Wait()
}

func (p *UDPProxy) record(d UDPDisturbance) {
	p.mu.Lock()
	p.log = append(p.log, d)
	p.mu.Unlock()
}

// flowFor finds or creates the relay flow for a client address, starting
// its downstream pump. Returns nil once closed (or if the upstream socket
// cannot bind).
func (p *UDPProxy) flowFor(raddr *net.UDPAddr) *udpFlow {
	key := raddr.String()
	p.mu.Lock()
	if f, ok := p.flows[key]; ok {
		p.mu.Unlock()
		return f
	}
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	idx := len(p.flows)
	p.mu.Unlock()

	up, err := net.DialUDP("udp", nil, p.target)
	if err != nil {
		return nil
	}
	f := &udpFlow{idx: idx, client: *raddr, up: up}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		return nil
	}
	p.flows[key] = f
	p.mu.Unlock()
	p.wg.Add(1)
	go p.downLoop(f)
	return f
}

// readLoop pumps client→target datagrams, assigning each flow its index in
// first-seen order and each datagram its per-flow arrival index.
func (p *UDPProxy) readLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := p.pc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		f := p.flowFor(raddr)
		if f == nil {
			continue
		}
		idx := f.upIdx
		f.upIdx++ // readLoop is the only writer
		p.apply(f.idx, DirUp, idx, buf[:n], func(pkt []byte) {
			_, _ = f.up.Write(pkt)
		})
	}
}

// downLoop pumps target→client datagrams for one flow.
func (p *UDPProxy) downLoop(f *udpFlow) {
	defer p.wg.Done()
	buf := make([]byte, 64*1024)
	var idx uint64
	for {
		n, err := f.up.Read(buf)
		if err != nil {
			return
		}
		i := idx
		idx++
		client := f.client
		p.apply(f.idx, DirDown, i, buf[:n], func(pkt []byte) {
			_, _ = p.pc.WriteToUDP(pkt, &client)
		})
	}
}

// apply executes one datagram's fate: a drop forwards nothing; reorder and
// latency delay the original without blocking later datagrams (that is what
// makes it a reordering); a duplicate departs immediately and may overtake
// its delayed original.
func (p *UDPProxy) apply(flow int, dir Direction, index uint64, pkt []byte, send func([]byte)) {
	f := p.plan.fate(flow, dir, index)
	if f.drop {
		p.record(UDPDisturbance{Flow: flow, Dir: dir, Index: index, Kind: "drop", Amount: int64(len(pkt))})
		return
	}
	var delay time.Duration
	if f.delayUS > 0 {
		p.record(UDPDisturbance{Flow: flow, Dir: dir, Index: index, Kind: "latency", Amount: f.delayUS})
		delay += time.Duration(f.delayUS) * time.Microsecond
	}
	if f.reorder {
		hold := p.plan.reorderDelay()
		p.record(UDPDisturbance{Flow: flow, Dir: dir, Index: index, Kind: "reorder", Amount: int64(hold / time.Microsecond)})
		delay += hold
	}
	cp := append([]byte(nil), pkt...)
	if delay > 0 {
		p.sendLater(delay, func() { send(cp) })
	} else {
		send(cp)
	}
	if f.dup {
		p.record(UDPDisturbance{Flow: flow, Dir: dir, Index: index, Kind: "duplicate", Amount: int64(len(pkt))})
		send(cp)
	}
}

// sendLater schedules a delayed forward, cancelled by Stop.
func (p *UDPProxy) sendLater(d time.Duration, send func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			send()
		case <-p.done:
		}
	}()
}
