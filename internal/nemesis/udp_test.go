package nemesis

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// udpSink binds a UDP socket that counts received datagrams and records
// their payloads' sequence numbers.
func udpSink(t *testing.T) (addr string, recv func() []uint64, stop func()) {
	t.Helper()
	laddr, _ := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var got []uint64
	gotCh := make(chan uint64, 4096)
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		for {
			n, _, err := pc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n >= 8 {
				gotCh <- binary.BigEndian.Uint64(buf[:8])
			}
		}
	}()
	recv = func() []uint64 {
		for {
			select {
			case v := <-gotCh:
				got = append(got, v)
			default:
				return append([]uint64(nil), got...)
			}
		}
	}
	return pc.LocalAddr().String(), recv, func() {
		pc.Close()
		<-done
	}
}

// driveUDP pushes n numbered datagrams through the proxy from one client
// socket, paced so the proxy's read loop sees them in send order.
func driveUDP(t *testing.T, proxyAddr string, n int) {
	t.Helper()
	conn, err := net.Dial("udp", proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := make([]byte, 64)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(pkt, uint64(i))
		if _, err := conn.Write(pkt); err != nil {
			t.Fatalf("write datagram %d: %v", i, err)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func formatLog(ds []UDPDisturbance) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}

// waitDisturbed polls until the proxy has seen all n upstream datagrams
// (logged or forwarded — we detect via fate accounting below) by waiting a
// settle interval after the last log growth.
func waitSettled(p *UDPProxy) {
	prev := -1
	for i := 0; i < 50; i++ {
		cur := len(p.Disturbances())
		if cur == prev {
			time.Sleep(5 * time.Millisecond)
			if len(p.Disturbances()) == cur {
				return
			}
		}
		prev = cur
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUDPFatePure pins the determinism contract at its root: a datagram's
// fate is a pure function of (seed, flow, dir, index) — identical on every
// evaluation, independent of evaluation order.
func TestUDPFatePure(t *testing.T) {
	plan := UDPPlan{Seed: 99, Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, DelayMinUS: 10, DelayMaxUS: 500}
	// Evaluate forward then backward: order must not matter.
	forward := make([]udpFate, 64)
	for i := range forward {
		forward[i] = plan.fate(3, DirDown, uint64(i))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if again := plan.fate(3, DirDown, uint64(i)); again != forward[i] {
			t.Fatalf("fate(3, down, %d) changed across evaluations: %+v vs %+v", i, again, forward[i])
		}
	}
	// Distinct coordinates draw distinct streams (statistically: at least
	// one fate differs across 64 indices).
	diff := false
	for i := range forward {
		if plan.fate(4, DirDown, uint64(i)) != forward[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("flows 3 and 4 drew identical fate sequences — streams are correlated")
	}
}

// TestUDPProxyDeterministicLog is the acceptance witness: the same packet
// sequence through two proxies running the same plan yields byte-identical
// disturbance logs.
func TestUDPProxyDeterministicLog(t *testing.T) {
	const packets = 200
	plan := UDPPlan{Seed: 7, Drop: 0.15, Duplicate: 0.1, Reorder: 0.1, DelayMinUS: 5, DelayMaxUS: 50}
	logs := make([]string, 2)
	for run := 0; run < 2; run++ {
		addr, _, stopSink := udpSink(t)
		p, err := NewUDP(addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		driveUDP(t, p.Addr(), packets)
		waitSettled(p)
		logs[run] = formatLog(p.Disturbances())
		p.Stop()
		stopSink()
	}
	if logs[0] != logs[1] {
		t.Fatalf("disturbance logs differ across identical runs:\nrun0:\n%srun1:\n%s", logs[0], logs[1])
	}
	if logs[0] == "" {
		t.Fatal("plan produced no disturbances — the witness is vacuous")
	}
}

// TestUDPProxyDropsAndDuplicates checks the fates are actually executed on
// the wire: the sink receives exactly the non-dropped datagrams, plus one
// extra copy per duplicate, and every loss the sink observed is a logged
// drop, not an accident.
func TestUDPProxyDropsAndDuplicates(t *testing.T) {
	const packets = 300
	plan := UDPPlan{Seed: 21, Drop: 0.2, Duplicate: 0.15}
	addr, recv, stopSink := udpSink(t)
	defer stopSink()
	p, err := NewUDP(addr, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	driveUDP(t, p.Addr(), packets)
	waitSettled(p)

	drops, dups := 0, 0
	for _, d := range p.Disturbances() {
		switch d.Kind {
		case "drop":
			drops++
		case "duplicate":
			dups++
		}
	}
	if drops == 0 || dups == 0 {
		t.Fatalf("plan fired %d drops / %d duplicates, want both > 0", drops, dups)
	}
	// Loopback UDP does not lose datagrams on its own at this rate, so the
	// arithmetic is exact.
	deadline := time.Now().Add(5 * time.Second)
	want := packets - drops + dups
	for len(recv()) < want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(recv()); got != want {
		t.Fatalf("sink received %d datagrams, want %d (%d sent - %d dropped + %d duplicated)",
			got, want, packets, drops, dups)
	}
}

// TestUDPProxyReordersDelivery checks a reorder fate visibly changes
// arrival order: with held datagrams and live follow-on traffic, the sink
// must observe at least one out-of-order pair.
func TestUDPProxyReordersDelivery(t *testing.T) {
	const packets = 200
	plan := UDPPlan{Seed: 5, Reorder: 0.2, ReorderDelayUS: 3000}
	addr, recv, stopSink := udpSink(t)
	defer stopSink()
	p, err := NewUDP(addr, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	driveUDP(t, p.Addr(), packets)
	deadline := time.Now().Add(5 * time.Second)
	for len(recv()) < packets && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	seqs := recv()
	if len(seqs) != packets {
		t.Fatalf("sink received %d datagrams, want %d (plan drops nothing)", len(seqs), packets)
	}
	inverted := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("no out-of-order arrivals despite reorder fates — holds are not reordering")
	}
}

// TestUDPPlanValidate rejects out-of-range parameters.
func TestUDPPlanValidate(t *testing.T) {
	bad := []UDPPlan{
		{Drop: -0.1},
		{Duplicate: 1.5},
		{Reorder: 2},
		{ReorderDelayUS: -1},
		{DelayMinUS: 10, DelayMaxUS: 5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated, want error", i)
		}
	}
	if err := (UDPPlan{Seed: 1, Drop: 0.5, Duplicate: 0.5, Reorder: 0.5, DelayMinUS: 1, DelayMaxUS: 2}).Validate(); err != nil {
		t.Errorf("valid plan refused: %v", err)
	}
}
