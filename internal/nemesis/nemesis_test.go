package nemesis

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	open := make(map[net.Conn]struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			open[c] = struct{}{}
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		mu.Lock()
		for c := range open {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// runTraffic pushes pattern through a proxy to an echo server and returns
// what came back (reading until len(pattern) bytes or the conn dies).
func runTraffic(t *testing.T, proxyAddr string, pattern []byte) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		conn.Write(pattern)
	}()
	got := make([]byte, 0, len(pattern))
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for len(got) < len(pattern) {
		n, err := conn.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	return got
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 251)
	}
	return b
}

// signature compresses a disturbance log to its determinism-relevant
// content: which decision fired at which (conn, dir, quantum). Hold/release
// amounts depend on Read chunking, so only their presence is compared.
func signature(log []Disturbance) []string {
	out := make([]string, 0, len(log))
	for _, d := range log {
		switch d.Kind {
		case "hold", "release":
			out = append(out, fmt.Sprintf("conn%d/%s q%d %s", d.Conn, d.Dir, d.Quantum, d.Kind))
		default:
			out = append(out, d.String())
		}
	}
	return out
}

// TestDeterminism: the same plan, seed, and byte traffic produce the same
// disturbance sequence — the contract internal/faults makes at the model
// layer, here at the socket layer.
func TestDeterminism(t *testing.T) {
	plan := Plan{
		Seed:         42,
		Quantum:      256,
		LatencyMinUS: 10,
		LatencyMaxUS: 50,
		StallProb:    0.3,
		StallUS:      100,
	}
	traffic := pattern(8 * 256)
	var sigs [2][]string
	for run := 0; run < 2; run++ {
		addr, stopEcho := echoServer(t)
		p, err := New(addr, plan)
		if err != nil {
			t.Fatal(err)
		}
		got := runTraffic(t, p.Addr(), traffic)
		if !bytes.Equal(got, traffic) {
			t.Fatalf("run %d: echoed %d bytes, want %d, or bytes differ", run, len(got), len(traffic))
		}
		p.Stop()
		stopEcho()
		// Only the up direction is byte-for-byte reproducible across runs:
		// the down direction's chunking depends on how the echo server's
		// writes coalesce. Up-quantum decisions are the contract.
		for _, s := range signature(p.Disturbances()) {
			if len(s) > 6 && s[:6] == "conn0/" && s[6:8] == "up" {
				sigs[run] = append(sigs[run], s)
			}
		}
	}
	if len(sigs[0]) == 0 {
		t.Fatal("no up-direction disturbances logged; plan too weak for the test")
	}
	if len(sigs[0]) != len(sigs[1]) {
		t.Fatalf("disturbance counts differ: %d vs %d\nrun0: %v\nrun1: %v",
			len(sigs[0]), len(sigs[1]), sigs[0], sigs[1])
	}
	for i := range sigs[0] {
		if sigs[0][i] != sigs[1][i] {
			t.Fatalf("disturbance %d differs: %q vs %q", i, sigs[0][i], sigs[1][i])
		}
	}
}

// TestReset: ResetProb=1 kills the connection on its first quantum, both
// sides observing the close.
func TestReset(t *testing.T) {
	addr, stopEcho := echoServer(t)
	defer stopEcho()
	p, err := New(addr, Plan{Seed: 7, ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("doomed"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read %d bytes, want connection reset", n)
	}
	found := false
	for _, d := range p.Disturbances() {
		if d.Kind == "reset" {
			found = true
		}
	}
	if !found {
		t.Fatal("no reset logged")
	}
}

// TestOneWayHold: a window holding the up direction buffers bytes (hold
// logged), then releases them once traffic advances past the window — no
// data is lost, only delayed.
func TestOneWayHold(t *testing.T) {
	addr, stopEcho := echoServer(t)
	defer stopEcho()
	plan := Plan{
		Seed:    3,
		Quantum: 128,
		OneWay:  []Window{{Dir: DirUp, FromQ: 0, UntilQ: 2}},
	}
	p, err := New(addr, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	traffic := pattern(4 * 128) // quanta 0,1 held; 2,3 flow (flushing the held prefix)
	got := runTraffic(t, p.Addr(), traffic)
	if !bytes.Equal(got, traffic) {
		t.Fatalf("echoed %d bytes, want %d intact", len(got), len(traffic))
	}
	var holds, releases int
	for _, d := range p.Disturbances() {
		switch d.Kind {
		case "hold":
			holds++
		case "release":
			releases++
		}
	}
	if holds == 0 || releases == 0 {
		t.Fatalf("holds=%d releases=%d, want both > 0", holds, releases)
	}
}

// TestBandwidthCap: a tight cap makes a transfer measurably slower than an
// uncapped one (coarse bound — scheduling noise, not an SLA).
func TestBandwidthCap(t *testing.T) {
	addr, stopEcho := echoServer(t)
	defer stopEcho()
	p, err := New(addr, Plan{Seed: 1, BandwidthBPS: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	traffic := pattern(32 * 1024) // 32 KiB at 64 KiB/s ≈ 500ms one way
	start := time.Now()
	got := runTraffic(t, p.Addr(), traffic)
	elapsed := time.Since(start)
	if !bytes.Equal(got, traffic) {
		t.Fatalf("echoed %d bytes, want %d intact", len(got), len(traffic))
	}
	if elapsed < 200*time.Millisecond {
		t.Fatalf("transfer took %v, want the cap to slow it past 200ms", elapsed)
	}
}

// TestValidate rejects malformed plans.
func TestValidate(t *testing.T) {
	bad := []Plan{
		{Quantum: -1},
		{LatencyMinUS: 10, LatencyMaxUS: 5},
		{StallProb: 1.5},
		{ResetProb: -0.1},
		{StallUS: -1},
		{OneWay: []Window{{FromQ: 5, UntilQ: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: want validation error", i)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan: %v", err)
	}
}

// TestStopUnblocks: Stop while a connection is mid-stream closes everything
// and returns (no goroutine leak hang).
func TestStopUnblocks(t *testing.T) {
	addr, stopEcho := echoServer(t)
	defer stopEcho()
	p, err := New(addr, Plan{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("hello"))
	time.Sleep(20 * time.Millisecond) // let the relay engage
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
}
