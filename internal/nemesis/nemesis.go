// Package nemesis is a seeded socket-layer disturbance proxy: a TCP
// relay that injects latency, caps bandwidth, stalls byte streams, resets
// connections mid-stream, and holds one direction of traffic (a one-way
// partition), all driven by a declarative Plan.
//
// It is the wire-level sibling of internal/faults: where the fault injector
// disturbs the model's substrate seam (whole transmissions, in virtual
// time), the nemesis disturbs the TCP byte streams underneath the network
// runtime — torn frames, half-open connections, asymmetric reachability —
// the failure modes internal/netrt's crash-recovery machinery exists to
// absorb. The crash conformance suite routes a loopback cluster's dialled
// addresses through nemesis proxies (netrt.Config.WrapAddr) and asserts the
// model invariants still hold.
//
// Determinism: every disturbance decision is a pure function of
// (Plan.Seed, connection index, direction, quantum index). Each direction
// of each proxied connection carries its own splitmix64 stream, keyed from
// the seed by connection and direction, and draws a fixed number of
// variates per quantum (latency, stall, reset — in that order), so the
// decision at quantum q never depends on how the stream was chunked into
// Read calls. Two runs with the same plan and the same byte traffic
// produce the same disturbance sequence; the Disturbances log is the
// witness, exactly as the fault injector's trace is at the model layer.
// (Wall-clock effects — how long a sleep takes — are of course not part of
// the contract; which disturbance fires at which byte offset is.)
package nemesis

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mobiledist/internal/sim"
)

// defaultQuantum is the decision granularity in bytes: one disturbance
// decision per quantum of stream data.
const defaultQuantum = 1024

// Direction identifies one half of a proxied connection.
type Direction uint8

const (
	// DirUp is client→target (toward the listener the proxy fronts).
	DirUp Direction = iota
	// DirDown is target→client.
	DirDown
)

// String names the direction.
func (d Direction) String() string {
	if d == DirDown {
		return "down"
	}
	return "up"
}

// Window is a one-way partition: while the direction's quantum index lies
// in [FromQ, UntilQ), bytes are buffered instead of forwarded. The window
// lifts as traffic advances quanta (the reader keeps consuming, so the
// index keeps moving); held bytes flush with the first forwarded write
// after the window, or at end of stream.
type Window struct {
	Dir    Direction `json:"dir"`
	FromQ  uint64    `json:"from_q"`
	UntilQ uint64    `json:"until_q"`
}

// Plan declares the disturbances. The zero value disturbs nothing.
type Plan struct {
	// Seed keys every decision stream. Same seed, same traffic → same
	// disturbance sequence.
	Seed uint64 `json:"seed"`
	// Quantum is the decision granularity in bytes (0: 1024).
	Quantum int `json:"quantum,omitempty"`
	// LatencyMinUS/LatencyMaxUS bound the per-quantum injected delay in
	// microseconds (both 0: none).
	LatencyMinUS int64 `json:"latency_min_us,omitempty"`
	LatencyMaxUS int64 `json:"latency_max_us,omitempty"`
	// BandwidthBPS caps each direction's forwarding rate in bytes/second
	// (0: unlimited).
	BandwidthBPS int64 `json:"bandwidth_bps,omitempty"`
	// StallProb is the per-quantum probability of a byte-level stall of
	// StallUS microseconds: the stream freezes mid-frame, then resumes.
	StallProb float64 `json:"stall_prob,omitempty"`
	StallUS   int64   `json:"stall_us,omitempty"`
	// ResetProb is the per-quantum probability of a mid-stream reset: both
	// sides of the proxied connection close immediately.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// OneWay lists one-way partition windows in quantum index space.
	OneWay []Window `json:"one_way,omitempty"`
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	if p.Quantum < 0 {
		return fmt.Errorf("nemesis: negative quantum %d", p.Quantum)
	}
	if p.LatencyMinUS < 0 || p.LatencyMaxUS < p.LatencyMinUS {
		return fmt.Errorf("nemesis: bad latency range [%d, %d]", p.LatencyMinUS, p.LatencyMaxUS)
	}
	if p.StallProb < 0 || p.StallProb > 1 {
		return fmt.Errorf("nemesis: stall probability %v out of [0,1]", p.StallProb)
	}
	if p.ResetProb < 0 || p.ResetProb > 1 {
		return fmt.Errorf("nemesis: reset probability %v out of [0,1]", p.ResetProb)
	}
	if p.StallUS < 0 || p.BandwidthBPS < 0 {
		return fmt.Errorf("nemesis: negative stall or bandwidth")
	}
	for _, w := range p.OneWay {
		if w.UntilQ < w.FromQ {
			return fmt.Errorf("nemesis: one-way window [%d, %d) inverted", w.FromQ, w.UntilQ)
		}
	}
	return nil
}

func (p Plan) quantum() int {
	if p.Quantum <= 0 {
		return defaultQuantum
	}
	return p.Quantum
}

// holds reports whether dir's quantum q falls in a one-way window.
func (p Plan) holds(dir Direction, q uint64) bool {
	for _, w := range p.OneWay {
		if w.Dir == dir && w.FromQ <= q && q < w.UntilQ {
			return true
		}
	}
	return false
}

// Disturbance is one logged decision — the determinism witness.
type Disturbance struct {
	// Conn is the proxied connection's accept index; Dir the stream half.
	Conn int
	Dir  Direction
	// Quantum is the decision's quantum index.
	Quantum uint64
	// Kind is "latency", "stall", "reset", "hold", or "release".
	Kind string
	// Amount is kind-specific: microseconds for latency/stall, held or
	// released bytes for hold/release, 0 for reset.
	Amount int64
}

// String formats the disturbance for test diffs.
func (d Disturbance) String() string {
	return fmt.Sprintf("conn%d/%s q%d %s %d", d.Conn, d.Dir, d.Quantum, d.Kind, d.Amount)
}

// decision is the fixed draw triple for one quantum.
type decision struct {
	latencyUS int64
	stall     bool
	reset     bool
}

// streamKey derives the per-(connection, direction) RNG seed — the
// golden-ratio spread keeps nearby connection indices from correlating.
func streamKey(seed uint64, conn int, dir Direction) uint64 {
	return seed ^ (uint64(conn)*2+uint64(dir)+1)*0x9E3779B97F4A7C15
}

// Proxy is one nemesis instance fronting one target address. Every
// accepted connection is relayed to the target with the plan's
// disturbances applied independently per direction.
type Proxy struct {
	plan   Plan
	target string
	ln     net.Listener
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  int
	open   map[net.Conn]struct{}
	log    []Disturbance
	closed bool
}

// New starts a proxy on 127.0.0.1:0 relaying to target.
func New(target string, plan Plan) (*Proxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{plan: plan, target: target, ln: ln, open: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the disturbed side dials
// instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the address the proxy relays to.
func (p *Proxy) Target() string { return p.target }

// Disturbances returns a copy of the disturbance log so far.
func (p *Proxy) Disturbances() []Disturbance {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Disturbance, len(p.log))
	copy(out, p.log)
	return out
}

// Stop closes the listener and every proxied connection, then waits for
// all relay goroutines.
func (p *Proxy) Stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.open))
	for c := range p.open {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) record(d Disturbance) {
	p.mu.Lock()
	p.log = append(p.log, d)
	p.mu.Unlock()
}

// track registers a conn for Stop teardown, refusing after close.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.open[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.open, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		idx := p.conns
		p.conns++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(in, idx)
	}
}

// serve relays one accepted connection: dial the target, then pump each
// direction through its own disturbance pipeline. Either pipeline's reset
// (or either endpoint closing) tears both down.
func (p *Proxy) serve(in net.Conn, idx int) {
	defer p.wg.Done()
	out, err := net.Dial("tcp", p.target)
	if err != nil {
		in.Close()
		return
	}
	if !p.track(in) || !p.track(out) {
		in.Close()
		out.Close()
		p.untrack(in)
		return
	}
	closeBoth := func() {
		in.Close()
		out.Close()
	}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(in, out, idx, DirUp, closeBoth)
	}()
	go func() {
		defer pumps.Done()
		p.pump(out, in, idx, DirDown, closeBoth)
	}()
	pumps.Wait()
	closeBoth()
	p.untrack(in)
	p.untrack(out)
}

// pump relays one direction, applying the plan quantum by quantum. The
// decision for quantum q is drawn when its first byte arrives (an idle
// stream is never disturbed), with a fixed draw order so the sequence is
// independent of Read chunking.
func (p *Proxy) pump(src, dst net.Conn, idx int, dir Direction, closeBoth func()) {
	rng := sim.NewRNG(streamKey(p.plan.Seed, idx, dir))
	draw := func() decision {
		var d decision
		if p.plan.LatencyMaxUS > 0 {
			d.latencyUS = p.plan.LatencyMinUS
			if span := p.plan.LatencyMaxUS - p.plan.LatencyMinUS; span > 0 {
				d.latencyUS += rng.Int63n(span + 1)
			}
		}
		d.stall = p.plan.StallProb > 0 && rng.Float64() < p.plan.StallProb
		d.reset = p.plan.ResetProb > 0 && rng.Float64() < p.plan.ResetProb
		return d
	}

	quantum := p.plan.quantum()
	buf := make([]byte, quantum)
	var (
		q       uint64 // current quantum index
		offset  int    // bytes consumed within the current quantum
		decided bool
		held    []byte // bytes buffered by a one-way window
	)
	flushHeld := func() bool {
		if len(held) == 0 {
			return true
		}
		p.record(Disturbance{Conn: idx, Dir: dir, Quantum: q, Kind: "release", Amount: int64(len(held))})
		_, err := dst.Write(held)
		held = nil
		return err == nil
	}
	for {
		n, err := src.Read(buf[:quantum-offset])
		if n > 0 {
			if !decided {
				decided = true
				d := draw()
				if d.reset {
					p.record(Disturbance{Conn: idx, Dir: dir, Quantum: q, Kind: "reset"})
					closeBoth()
					return
				}
				if d.latencyUS > 0 {
					p.record(Disturbance{Conn: idx, Dir: dir, Quantum: q, Kind: "latency", Amount: d.latencyUS})
					time.Sleep(time.Duration(d.latencyUS) * time.Microsecond)
				}
				if d.stall && p.plan.StallUS > 0 {
					p.record(Disturbance{Conn: idx, Dir: dir, Quantum: q, Kind: "stall", Amount: p.plan.StallUS})
					time.Sleep(time.Duration(p.plan.StallUS) * time.Microsecond)
				}
			}
			chunk := buf[:n]
			if p.plan.holds(dir, q) {
				held = append(held, chunk...)
				p.record(Disturbance{Conn: idx, Dir: dir, Quantum: q, Kind: "hold", Amount: int64(n)})
			} else {
				if !flushHeld() {
					closeBoth()
					return
				}
				if p.plan.BandwidthBPS > 0 {
					time.Sleep(time.Duration(int64(n) * int64(time.Second) / p.plan.BandwidthBPS))
				}
				if _, werr := dst.Write(chunk); werr != nil {
					closeBoth()
					return
				}
			}
			offset += n
			if offset == quantum {
				q++
				offset = 0
				decided = false
			}
		}
		if err != nil {
			// End of stream: held bytes still flush (the partition does not
			// destroy data, it delays it), then the write side closes.
			flushHeld()
			closeBoth()
			return
		}
	}
}
