// Package logical provides Lamport logical clocks and the timestamp-ordered
// request queue used by Lamport's mutual exclusion algorithm [Lamport 1978].
// These are the data structures algorithms L1 and L2 maintain at their
// participants (mobile hosts for L1, support stations for L2).
package logical

// Clock is a Lamport logical clock. The zero value is ready to use.
type Clock struct {
	t int64
}

// Now returns the current clock value without advancing it.
func (c *Clock) Now() int64 { return c.t }

// Tick advances the clock for a local event (such as sending a message) and
// returns the new value.
func (c *Clock) Tick() int64 {
	c.t++
	return c.t
}

// Witness merges a received timestamp into the clock, advancing past it,
// and returns the new value.
func (c *Clock) Witness(ts int64) int64 {
	if ts > c.t {
		c.t = ts
	}
	c.t++
	return c.t
}

// Timestamp is a Lamport timestamp with a process id tiebreak, yielding the
// total order Lamport's algorithm requires.
type Timestamp struct {
	Time int64
	Proc int
}

// Less reports whether t precedes u in the (time, proc) total order.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	return t.Proc < u.Proc
}
