package logical

import "sort"

// Request is one pending mutual exclusion request in a participant's
// request queue. Tag carries algorithm-specific identity (L2 stores the
// requesting MH's id there; L1 leaves it zero).
type Request struct {
	TS  Timestamp
	Tag int64
}

// RequestQueue is the timestamp-ordered queue of pending requests each
// Lamport participant maintains. Operations keep the slice sorted by
// timestamp order; queues are small (one entry per outstanding request), so
// linear maintenance is appropriate and allocation-free on the hot path.
//
// The zero value is an empty queue.
type RequestQueue struct {
	reqs []Request
}

// Len returns the number of queued requests.
func (q *RequestQueue) Len() int { return len(q.reqs) }

// Insert adds r, keeping timestamp order.
func (q *RequestQueue) Insert(r Request) {
	i := sort.Search(len(q.reqs), func(i int) bool { return r.TS.Less(q.reqs[i].TS) })
	q.reqs = append(q.reqs, Request{})
	copy(q.reqs[i+1:], q.reqs[i:])
	q.reqs[i] = r
}

// Head returns the earliest request. ok is false when the queue is empty.
func (q *RequestQueue) Head() (r Request, ok bool) {
	if len(q.reqs) == 0 {
		return Request{}, false
	}
	return q.reqs[0], true
}

// Remove deletes the request with exactly the given timestamp, reporting
// whether it was present.
func (q *RequestQueue) Remove(ts Timestamp) bool {
	for i, r := range q.reqs {
		if r.TS == ts {
			q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveByProc deletes the earliest request issued by proc, reporting
// whether one was present. Lamport's release messages identify the releasing
// process; with at most one granted request per process at a time the
// earliest entry is the released one.
func (q *RequestQueue) RemoveByProc(proc int) bool {
	for i, r := range q.reqs {
		if r.TS.Proc == proc {
			q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
			return true
		}
	}
	return false
}

// Requests returns a copy of the queue contents in timestamp order.
func (q *RequestQueue) Requests() []Request {
	out := make([]Request, len(q.reqs))
	copy(out, q.reqs)
	return out
}
