package logical

import "fmt"

// MutexMsg is a protocol message between Lamport mutual-exclusion
// participants [Lamport 1978].
type MutexMsg interface {
	// Sender is the issuing participant.
	Sender() int
	// Stamp is the sender's logical clock value when the message was sent.
	Stamp() int64
}

// MutexRequest announces a new request with the sender's timestamp.
type MutexRequest struct {
	From int
	TS   Timestamp
}

// Sender implements MutexMsg.
func (m MutexRequest) Sender() int { return m.From }

// Stamp implements MutexMsg.
func (m MutexRequest) Stamp() int64 { return m.TS.Time }

// MutexReply acknowledges a request.
type MutexReply struct {
	From  int
	Clock int64
}

// Sender implements MutexMsg.
func (m MutexReply) Sender() int { return m.From }

// Stamp implements MutexMsg.
func (m MutexReply) Stamp() int64 { return m.Clock }

// MutexRelease withdraws a previously granted request.
type MutexRelease struct {
	From  int
	ReqTS Timestamp
	Clock int64
}

// Sender implements MutexMsg.
func (m MutexRelease) Sender() int { return m.From }

// Stamp implements MutexMsg.
func (m MutexRelease) Stamp() int64 { return m.Clock }

// MutexEngine is one participant of Lamport's mutual exclusion algorithm:
// a logical clock, a timestamp-ordered request queue, and the last
// timestamp seen from every peer. The engine performs all communication
// through the injected send callback, so it can be hosted on any substrate
// (mobile hosts in L1, support stations in L2, proxies in the Section-5
// framework). A participant may enter the critical section for the request
// at the head of its queue once it has received a message timestamped
// later than that request from every other participant.
//
// The engine requires FIFO channels between every participant pair.
type MutexEngine struct {
	proc  int
	peers int

	clock    Clock
	queue    RequestQueue
	lastSeen []int64

	// granted marks that the current queue head is this participant's and
	// has been handed to onGrant; it is cleared when that request releases.
	granted bool

	send    func(to int, m MutexMsg)
	onGrant func(tag int64, ts Timestamp)
}

// NewMutexEngine builds participant proc of peers total. send transmits a
// protocol message to a peer; onGrant fires when a local request (identified
// by its tag and timestamp) acquires the critical section.
func NewMutexEngine(proc, peers int, send func(to int, m MutexMsg), onGrant func(tag int64, ts Timestamp)) *MutexEngine {
	if proc < 0 || proc >= peers {
		panic(fmt.Sprintf("logical: participant %d out of range [0,%d)", proc, peers))
	}
	return &MutexEngine{
		proc:     proc,
		peers:    peers,
		lastSeen: make([]int64, peers),
		send:     send,
		onGrant:  onGrant,
	}
}

// Request enqueues a new local request tagged tag, broadcasts it, and
// returns its timestamp.
func (e *MutexEngine) Request(tag int64) Timestamp {
	ts := Timestamp{Time: e.clock.Tick(), Proc: e.proc}
	e.queue.Insert(Request{TS: ts, Tag: tag})
	for j := 0; j < e.peers; j++ {
		if j != e.proc {
			e.send(j, MutexRequest{From: e.proc, TS: ts})
		}
	}
	e.maybeGrant()
	return ts
}

// Release withdraws the local request with timestamp ts and broadcasts the
// release.
func (e *MutexEngine) Release(ts Timestamp) error {
	if ts.Proc != e.proc {
		return fmt.Errorf("logical: release of foreign request %+v at proc %d", ts, e.proc)
	}
	if !e.queue.Remove(ts) {
		return fmt.Errorf("logical: release of unknown request %+v at proc %d", ts, e.proc)
	}
	e.granted = false
	c := e.clock.Tick()
	for j := 0; j < e.peers; j++ {
		if j != e.proc {
			e.send(j, MutexRelease{From: e.proc, ReqTS: ts, Clock: c})
		}
	}
	e.maybeGrant()
	return nil
}

// Handle processes one protocol message.
func (e *MutexEngine) Handle(m MutexMsg) {
	e.clock.Witness(m.Stamp())
	if ts := m.Stamp(); ts > e.lastSeen[m.Sender()] {
		e.lastSeen[m.Sender()] = ts
	}
	switch msg := m.(type) {
	case MutexRequest:
		e.queue.Insert(Request{TS: msg.TS})
		e.send(msg.From, MutexReply{From: e.proc, Clock: e.clock.Tick()})
	case MutexReply:
		// Clock and lastSeen updates above are the whole effect.
	case MutexRelease:
		if !e.queue.Remove(msg.ReqTS) {
			// A release can only refer to a request the FIFO channel
			// delivered earlier; a miss indicates a protocol bug.
			panic(fmt.Sprintf("logical: release for unknown request %+v at proc %d", msg.ReqTS, e.proc))
		}
	default:
		panic(fmt.Sprintf("logical: unknown mutex message %T", m))
	}
	e.maybeGrant()
}

// QueueLen reports the number of pending requests (for tests and metrics).
func (e *MutexEngine) QueueLen() int { return e.queue.Len() }

// maybeGrant fires onGrant when the head request is local and every peer
// has been heard from with a later timestamp.
func (e *MutexEngine) maybeGrant() {
	if e.granted {
		return
	}
	head, ok := e.queue.Head()
	if !ok || head.TS.Proc != e.proc {
		return
	}
	for j := 0; j < e.peers; j++ {
		if j != e.proc && e.lastSeen[j] <= head.TS.Time {
			return
		}
	}
	e.granted = true
	e.onGrant(head.Tag, head.TS)
}
