package logical

import (
	"testing"
)

// FuzzRequestQueue drives the queue with an arbitrary op-stream and checks
// the sortedness and consistency invariants. Run with
// `go test -fuzz=FuzzRequestQueue ./internal/logical` for continuous
// fuzzing; seeds alone run as regular tests.
func FuzzRequestQueue(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 9, 9, 9, 3})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q RequestQueue
		present := make(map[Timestamp]bool)
		for i, op := range ops {
			if i > 200 {
				break
			}
			ts := Timestamp{Time: int64(op % 32), Proc: i % 7}
			switch {
			case op%5 == 0 && len(present) > 0:
				for k := range present {
					if !q.Remove(k) {
						t.Fatalf("Remove(%v) failed for present ts", k)
					}
					delete(present, k)
					break
				}
			case op%7 == 0 && len(present) > 0:
				var anyProc int
				for k := range present {
					anyProc = k.Proc
					break
				}
				if q.RemoveByProc(anyProc) {
					// Remove the earliest ts of that proc from the model.
					var best *Timestamp
					for k := range present {
						if k.Proc != anyProc {
							continue
						}
						if best == nil || k.Less(*best) {
							kk := k
							best = &kk
						}
					}
					if best == nil {
						t.Fatal("RemoveByProc succeeded with no model entry")
					}
					delete(present, *best)
				}
			default:
				if present[ts] {
					continue
				}
				q.Insert(Request{TS: ts})
				present[ts] = true
			}
			// Invariants after every operation.
			reqs := q.Requests()
			if len(reqs) != len(present) {
				t.Fatalf("len %d, model %d", len(reqs), len(present))
			}
			for j := 1; j < len(reqs); j++ {
				if reqs[j].TS.Less(reqs[j-1].TS) {
					t.Fatalf("unsorted at %d: %v", j, reqs)
				}
			}
			if head, ok := q.Head(); ok && len(reqs) > 0 && head.TS != reqs[0].TS {
				t.Fatalf("head %v != first %v", head.TS, reqs[0].TS)
			}
		}
	})
}

// FuzzClockWitness checks the clock's monotonicity under arbitrary
// witnessed timestamps.
func FuzzClockWitness(f *testing.F) {
	f.Add([]byte{1, 200, 3})
	f.Add([]byte{255, 255, 0, 0})
	f.Fuzz(func(t *testing.T, stamps []byte) {
		var c Clock
		for _, b := range stamps {
			prev := c.Now()
			ts := int64(b) * 3
			v := c.Witness(ts)
			if v <= prev || v <= ts {
				t.Fatalf("Witness(%d) = %d after %d", ts, v, prev)
			}
		}
	})
}
