package logical

import (
	"testing"
	"testing/quick"
)

func TestClockTickMonotonic(t *testing.T) {
	var c Clock
	last := c.Now()
	for i := 0; i < 100; i++ {
		v := c.Tick()
		if v <= last {
			t.Fatalf("Tick not monotonic: %d after %d", v, last)
		}
		last = v
	}
}

func TestClockWitnessAdvancesPast(t *testing.T) {
	var c Clock
	if v := c.Witness(10); v != 11 {
		t.Errorf("Witness(10) = %d, want 11", v)
	}
	if v := c.Witness(5); v != 12 {
		t.Errorf("Witness(5) after 11 = %d, want 12", v)
	}
}

func TestClockWitnessProperty(t *testing.T) {
	// Property: after Witness(ts), the clock strictly exceeds both ts and
	// its previous value.
	check := func(seeds []int16) bool {
		var c Clock
		for _, s := range seeds {
			prev := c.Now()
			ts := int64(s)
			v := c.Witness(ts)
			if v <= ts || v <= prev {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimestampTotalOrder(t *testing.T) {
	a := Timestamp{Time: 1, Proc: 2}
	b := Timestamp{Time: 1, Proc: 3}
	c := Timestamp{Time: 2, Proc: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("ordering violated")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
	if b.Less(a) {
		t.Error("Less not antisymmetric")
	}
}

func TestRequestQueueOrdering(t *testing.T) {
	var q RequestQueue
	q.Insert(Request{TS: Timestamp{Time: 5, Proc: 1}})
	q.Insert(Request{TS: Timestamp{Time: 3, Proc: 2}})
	q.Insert(Request{TS: Timestamp{Time: 5, Proc: 0}})
	q.Insert(Request{TS: Timestamp{Time: 1, Proc: 9}})

	want := []Timestamp{{1, 9}, {3, 2}, {5, 0}, {5, 1}}
	got := q.Requests()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TS != want[i] {
			t.Fatalf("queue order %v, want %v", got, want)
		}
	}
	head, ok := q.Head()
	if !ok || head.TS != want[0] {
		t.Errorf("Head = %+v, want %v", head, want[0])
	}
}

func TestRequestQueueRemove(t *testing.T) {
	var q RequestQueue
	q.Insert(Request{TS: Timestamp{Time: 1, Proc: 0}})
	q.Insert(Request{TS: Timestamp{Time: 2, Proc: 1}})
	if !q.Remove(Timestamp{Time: 1, Proc: 0}) {
		t.Error("Remove of present request failed")
	}
	if q.Remove(Timestamp{Time: 1, Proc: 0}) {
		t.Error("Remove of absent request succeeded")
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	if !q.RemoveByProc(1) {
		t.Error("RemoveByProc failed")
	}
	if q.RemoveByProc(1) {
		t.Error("RemoveByProc of absent proc succeeded")
	}
	if _, ok := q.Head(); ok {
		t.Error("Head on empty queue returned ok")
	}
}

func TestRequestQueueSortedProperty(t *testing.T) {
	// Property: after arbitrary interleaved inserts and removes, the queue
	// remains sorted and contains exactly the un-removed items.
	check := func(ops []int16) bool {
		var q RequestQueue
		present := make(map[Timestamp]bool)
		for i, op := range ops {
			ts := Timestamp{Time: int64(op % 50), Proc: i % 5}
			if op%3 == 0 && len(present) > 0 {
				// Remove an arbitrary present timestamp.
				for k := range present {
					if !q.Remove(k) {
						return false
					}
					delete(present, k)
					break
				}
				continue
			}
			if present[ts] {
				continue // queue permits duplicates but the model map doesn't
			}
			q.Insert(Request{TS: ts})
			present[ts] = true
		}
		reqs := q.Requests()
		if len(reqs) != len(present) {
			return false
		}
		for i := 1; i < len(reqs); i++ {
			if reqs[i].TS.Less(reqs[i-1].TS) {
				return false
			}
		}
		for _, r := range reqs {
			if !present[r.TS] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// memNet is an in-memory FIFO network for driving MutexEngines directly:
// per ordered pair queues delivered in a randomized (but per-pair FIFO)
// order chosen by the seed.
type memNet struct {
	engines []*MutexEngine
	queues  map[[2]int][]MutexMsg
	order   []([2]int)
	rng     func(int) int
}

func newMemNet(n int, rng func(int) int) *memNet {
	return &memNet{
		engines: make([]*MutexEngine, n),
		queues:  make(map[[2]int][]MutexMsg),
		rng:     rng,
	}
}

func (n *memNet) send(from int) func(int, MutexMsg) {
	return func(to int, m MutexMsg) {
		key := [2]int{from, to}
		if len(n.queues[key]) == 0 {
			n.order = append(n.order, key)
		}
		n.queues[key] = append(n.queues[key], m)
	}
}

// step delivers one message from a pseudo-randomly chosen non-empty pair
// channel, preserving per-pair FIFO. It reports whether anything was
// delivered.
func (n *memNet) step() bool {
	for len(n.order) > 0 {
		i := n.rng(len(n.order))
		key := n.order[i]
		q := n.queues[key]
		if len(q) == 0 {
			n.order = append(n.order[:i], n.order[i+1:]...)
			continue
		}
		m := q[0]
		n.queues[key] = q[1:]
		if len(n.queues[key]) == 0 {
			n.order = append(n.order[:i], n.order[i+1:]...)
		}
		n.engines[key[1]].Handle(m)
		return true
	}
	return false
}

func (n *memNet) drain() {
	for n.step() {
	}
}

func TestMutexEngineSafetyAndOrderUnderRandomSchedules(t *testing.T) {
	// Property: for any message delivery schedule (FIFO per pair), at most
	// one participant holds the critical section, every request is
	// eventually granted, and grants follow timestamp order.
	check := func(seed int64, procsRaw uint8) bool {
		procs := int(procsRaw%4) + 2
		state := seed
		rng := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		net := newMemNet(procs, rng)

		var grantedOrder []Timestamp
		holders := 0
		safe := true
		release := make([]func(), 0, procs)
		for p := 0; p < procs; p++ {
			p := p
			net.engines[p] = NewMutexEngine(p, procs, net.send(p), func(tag int64, ts Timestamp) {
				holders++
				if holders > 1 {
					safe = false
				}
				grantedOrder = append(grantedOrder, ts)
				release = append(release, func() {
					holders--
					if err := net.engines[p].Release(ts); err != nil {
						safe = false
					}
				})
			})
		}
		// Every participant requests once, interleaved with deliveries.
		for p := 0; p < procs; p++ {
			net.engines[p].Request(int64(p))
			for i := 0; i < rng(5); i++ {
				net.step()
			}
		}
		// Alternate releases and deliveries until quiescence.
		for rounds := 0; rounds < 10*procs; rounds++ {
			net.drain()
			if len(release) == 0 {
				break
			}
			r := release[0]
			release = release[1:]
			r()
		}
		net.drain()
		if !safe {
			return false
		}
		if len(grantedOrder) != procs {
			return false
		}
		for i := 1; i < len(grantedOrder); i++ {
			if grantedOrder[i].Less(grantedOrder[i-1]) {
				return false // grants must follow timestamp order
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMutexEngineSingleParticipant(t *testing.T) {
	granted := 0
	var eng *MutexEngine
	eng = NewMutexEngine(0, 1, func(int, MutexMsg) {
		t.Error("single participant sent a message")
	}, func(tag int64, ts Timestamp) {
		granted++
		if err := eng.Release(ts); err != nil {
			t.Errorf("Release: %v", err)
		}
	})
	eng.Request(1)
	eng.Request(2)
	if granted != 2 {
		t.Errorf("granted = %d, want 2", granted)
	}
}

func TestMutexEngineRejectsBadRelease(t *testing.T) {
	eng := NewMutexEngine(0, 2, func(int, MutexMsg) {}, func(int64, Timestamp) {})
	if err := eng.Release(Timestamp{Time: 1, Proc: 1}); err == nil {
		t.Error("release of foreign request succeeded")
	}
	if err := eng.Release(Timestamp{Time: 9, Proc: 0}); err == nil {
		t.Error("release of unknown request succeeded")
	}
}

func TestNewMutexEngineValidatesProc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range proc did not panic")
		}
	}()
	NewMutexEngine(3, 2, func(int, MutexMsg) {}, func(int64, Timestamp) {})
}
