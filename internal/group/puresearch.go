package group

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// PureSearch is the search-on-demand strategy (§4.1): members keep only the
// member list; every group message is a separate searched point-to-point
// message to each member. No state is maintained across moves, so the cost
// of a group message is independent of MOB.
type PureSearch struct {
	ctx       core.Context
	opts      Options
	members   []core.MHID
	isMember  map[core.MHID]bool
	sent      int64
	delivered int64
}

var (
	_ Comm           = (*PureSearch)(nil)
	_ core.MHHandler = (*PureSearch)(nil)
)

// NewPureSearch registers a pure-search group over the given members.
func NewPureSearch(reg core.Registrar, members []core.MHID, opts Options) (*PureSearch, error) {
	set, err := memberSet(members)
	if err != nil {
		return nil, err
	}
	g := &PureSearch{
		opts:     opts,
		members:  append([]core.MHID(nil), members...),
		isMember: set,
	}
	g.ctx = reg.Register(g)
	return g, nil
}

// Name implements core.Algorithm.
func (g *PureSearch) Name() string { return "group/pure-search" }

// Sent implements Comm.
func (g *PureSearch) Sent() int64 { return g.sent }

// Delivered implements Comm.
func (g *PureSearch) Delivered() int64 { return g.delivered }

// Send implements Comm: one searched MH-to-MH message per other member.
func (g *PureSearch) Send(from core.MHID, payload any) error {
	if !g.isMember[from] {
		return fmt.Errorf("group: mh%d is not a member", int(from))
	}
	g.sent++
	msg := groupMsg{From: from, Payload: payload}
	for _, to := range g.members {
		if to == from {
			continue
		}
		if err := g.ctx.SendMHToMH(from, to, msg, cost.CatAlgorithm); err != nil {
			return fmt.Errorf("group: pure-search send: %w", err)
		}
	}
	return nil
}

// HandleMH implements core.MHHandler.
func (g *PureSearch) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(groupMsg)
	if !ok {
		panic(fmt.Sprintf("group: pure-search received unexpected message %T", msg))
	}
	g.delivered++
	if g.opts.OnDeliver != nil {
		g.opts.OnDeliver(at, m.From, m.Payload)
	}
}
