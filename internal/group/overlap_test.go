package group

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/multicast"
)

// TestOverlappingGroupsAreIsolated registers two location-view groups with
// overlapping membership on one network and checks their views and
// deliveries do not interfere.
func TestOverlappingGroupsAreIsolated(t *testing.T) {
	const (
		m = 6
		n = 10
	)
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = 51
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	logA := newDeliveryLog()
	logB := newDeliveryLog()
	// Group A: mh0..4; group B: mh3..7 (overlap on 3 and 4).
	groupA := []core.MHID{0, 1, 2, 3, 4}
	groupB := []core.MHID{3, 4, 5, 6, 7}
	lvA, err := NewLocationView(sys, groupA, LocationViewOptions{
		Options:       logA.opts(),
		Coordinator:   core.MSSID(0),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView A: %v", err)
	}
	lvB, err := NewLocationView(sys, groupB, LocationViewOptions{
		Options:       logB.opts(),
		Coordinator:   core.MSSID(5),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView B: %v", err)
	}

	// Move an overlap member (mh3) to a fresh cell: both views must update.
	if err := sys.Move(core.MHID(3), core.MSSID(5)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for name, lv := range map[string]*LocationView{"A": lvA, "B": lvB} {
		found := false
		for _, id := range lv.View() {
			if id == 5 {
				found = true
			}
		}
		if !found {
			t.Errorf("group %s view %v missing cell 5 after overlap member moved", name, lv.View())
		}
	}

	// Messages stay within their group.
	if err := lvA.Send(core.MHID(0), "for-A"); err != nil {
		t.Fatalf("Send A: %v", err)
	}
	if err := lvB.Send(core.MHID(7), "for-B"); err != nil {
		t.Fatalf("Send B: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lvA.Delivered() != int64(len(groupA)-1) {
		t.Errorf("group A delivered = %d, want %d", lvA.Delivered(), len(groupA)-1)
	}
	if lvB.Delivered() != int64(len(groupB)-1) {
		t.Errorf("group B delivered = %d, want %d", lvB.Delivered(), len(groupB)-1)
	}
	if logA.byMember[core.MHID(7)] != 0 {
		t.Error("non-member mh7 received group A traffic")
	}
	if logB.byMember[core.MHID(0)] != 0 {
		t.Error("non-member mh0 received group B traffic")
	}
	// Overlap members got exactly one copy from each group.
	for _, mh := range []core.MHID{3, 4} {
		if logA.byMember[mh] != 1 || logB.byMember[mh] != 1 {
			t.Errorf("overlap mh%d copies: A=%d B=%d, want 1/1",
				int(mh), logA.byMember[mh], logB.byMember[mh])
		}
	}
}

// TestGroupAndMulticastShareMembers co-registers a location-view group and a
// multicast feed over the same members; both must meet their guarantees
// through shared mobility.
func TestGroupAndMulticastShareMembers(t *testing.T) {
	const (
		m = 5
		n = 8
		g = 5
	)
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = 53
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(m - 1),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	feed := make(map[core.MHID][]int64)
	mc, err := multicast.New(sys, membersRange(g), multicast.Options{
		Sequencer: core.MSSID(0),
		OnDeliver: func(at core.MHID, seq int64, _ any) { feed[at] = append(feed[at], seq) },
	})
	if err != nil {
		t.Fatalf("multicast.New: %v", err)
	}

	if err := mc.Publish(core.MHID(1), "one"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	sys.Schedule(500, func() {
		if err := sys.Move(core.MHID(2), core.MSSID(4)); err != nil {
			t.Errorf("Move: %v", err)
		}
	})
	sys.Schedule(2_000, func() {
		if err := lv.Send(core.MHID(0), "group"); err != nil {
			t.Errorf("Send: %v", err)
		}
		if err := mc.Publish(core.MHID(3), "two"); err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lv.Delivered() != g-1 {
		t.Errorf("group delivered = %d, want %d", lv.Delivered(), g-1)
	}
	for i := 0; i < g; i++ {
		seqs := feed[core.MHID(i)]
		if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
			t.Errorf("feed member mh%d got %v, want [0 1]", i, seqs)
		}
	}
}
