package group

import (
	"fmt"
	"sort"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Location-view protocol messages (§4.3).
type (
	// lvUp carries a group message from a member to its local MSS.
	lvUp struct {
		Payload any
	}

	// lvForward fans a group message out to the MSSs of the view.
	lvForward struct {
		From    core.MHID
		Payload any
	}

	// lvFallback routes a group message through the coordinator when the
	// sender's MSS has no view copy yet (its addition is still in flight).
	lvFallback struct {
		From    core.MHID
		Payload any
	}

	// lvAddReq is sent by the new MSS M to the previous MSS M' after a
	// member joined a cell outside the view: "M requests M' to notify the
	// group coordinator to include M in LV(G)". AddSeq is M's change
	// sequence number, which lets the coordinator order this addition
	// against a racing deletion of M (an addition travels two hops, a
	// deletion one, so they can arrive out of causal order).
	lvAddReq struct {
		NewMSS core.MSSID
		Member core.MHID
		AddSeq int64
	}

	// lvCoordReq asks the coordinator to update the view. A combined
	// request (both flags set) covers the sole member of a cell moving to a
	// cell outside the view. AddSeq/DelSeq are the change sequence numbers
	// stamped by the added/deleted cell itself.
	lvCoordReq struct {
		HasAdd bool
		Add    core.MSSID
		AddSeq int64
		HasDel bool
		Del    core.MSSID
		DelSeq int64
	}

	// lvFullCopy delivers the complete view to a newly included MSS.
	lvFullCopy struct {
		View []core.MSSID
	}

	// lvInc is an incremental view update distributed to view members.
	lvInc struct {
		HasAdd bool
		Add    core.MSSID
		HasDel bool
		Del    core.MSSID
	}
)

// lvMSSState is the per-MSS protocol state.
type lvMSSState struct {
	inView bool
	view   map[core.MSSID]bool
	// changeSeq numbers this MSS's own view-change requests (its additions
	// and deletions), giving the coordinator a causal order per cell.
	changeSeq int64
	// pendingDelete marks that this MSS's last local member departed and a
	// deletion request is being withheld briefly in case it can be combined
	// with the destination's addition request (the paper's combined case).
	pendingDelete bool
	deleteEpoch   int
	// deleteInFlight marks that a deletion request for this cell has been
	// sent but its effect has not come back yet; a member joining in that
	// window must trigger a (higher-sequenced) re-addition even though the
	// local copy still says "in view".
	deleteInFlight bool
}

// LocationViewOptions extend Options for the location-view strategy.
type LocationViewOptions struct {
	Options
	// Coordinator is the MSS that serialises view changes. It need not host
	// any member.
	Coordinator core.MSSID
	// CombineWindow is how long an emptied MSS withholds its deletion
	// request waiting for a possible combined addition (paper §4.3). Zero
	// sends deletions immediately (never combining).
	CombineWindow sim.Time
}

// LocationView is the paper's proposed strategy (§4.3): the static tier
// maintains LV(G) — the set of MSSs with at least one group member — with
// all changes serialised through a coordinator MSS. Group messages travel
// once up the wireless link, across the view over the fixed network, and
// once down per recipient.
type LocationView struct {
	ctx      core.Context
	opts     LocationViewOptions
	members  []core.MHID
	isMember map[core.MHID]bool

	mss    []lvMSSState
	master map[core.MSSID]bool // coordinator's authoritative view
	// lastSeq is the coordinator's record of the highest change sequence
	// applied per cell; stale (overtaken) requests are discarded.
	lastSeq map[core.MSSID]int64

	sent       int64
	delivered  int64
	updates    int64 // coordinator-applied view changes
	fallbacks  int64 // group messages routed through the coordinator
	maxView    int
	combined   int64 // combined add+delete requests
	addReqs    int64
	deleteReqs int64
}

var (
	_ Comm                  = (*LocationView)(nil)
	_ core.MSSHandler       = (*LocationView)(nil)
	_ core.MHHandler        = (*LocationView)(nil)
	_ core.MobilityObserver = (*LocationView)(nil)
)

// NewLocationView registers a location-view group over the given members,
// seeding LV(G) from current member locations.
func NewLocationView(reg core.Registrar, members []core.MHID, opts LocationViewOptions) (*LocationView, error) {
	set, err := memberSet(members)
	if err != nil {
		return nil, err
	}
	g := &LocationView{
		opts:     opts,
		members:  append([]core.MHID(nil), members...),
		isMember: set,
		master:   make(map[core.MSSID]bool),
		lastSeq:  make(map[core.MSSID]int64),
	}
	g.ctx = reg.Register(g)
	if int(opts.Coordinator) < 0 || int(opts.Coordinator) >= g.ctx.M() {
		return nil, fmt.Errorf("group: invalid coordinator mss%d", int(opts.Coordinator))
	}
	g.mss = make([]lvMSSState, g.ctx.M())
	for _, at := range initialLocations(g.ctx, set) {
		g.master[at] = true
	}
	for id := range g.master {
		g.mss[id].inView = true
		g.mss[id].view = g.cloneMaster()
	}
	g.maxView = len(g.master)
	return g, nil
}

// Name implements core.Algorithm.
func (g *LocationView) Name() string { return "group/location-view" }

// Sent implements Comm.
func (g *LocationView) Sent() int64 { return g.sent }

// Delivered implements Comm.
func (g *LocationView) Delivered() int64 { return g.delivered }

// Updates reports coordinator-applied view changes.
func (g *LocationView) Updates() int64 { return g.updates }

// Fallbacks reports group messages that had to route via the coordinator
// because the sender's MSS had no view copy yet.
func (g *LocationView) Fallbacks() int64 { return g.fallbacks }

// CombinedRequests reports add+delete requests combined into one message.
func (g *LocationView) CombinedRequests() int64 { return g.combined }

// ViewSize returns the coordinator's current |LV(G)|.
func (g *LocationView) ViewSize() int { return len(g.master) }

// MaxViewSize returns the largest |LV(G)| observed (the paper's |LV|max).
func (g *LocationView) MaxViewSize() int { return g.maxView }

// View returns the coordinator's current view, sorted.
func (g *LocationView) View() []core.MSSID {
	out := make([]core.MSSID, 0, len(g.master))
	for id := range g.master {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Send implements Comm: uplink to the local MSS, which fans out across the
// view.
func (g *LocationView) Send(from core.MHID, payload any) error {
	if !g.isMember[from] {
		return fmt.Errorf("group: mh%d is not a member", int(from))
	}
	g.sent++
	if err := g.ctx.SendFromMH(from, lvUp{Payload: payload}, cost.CatAlgorithm); err != nil {
		return fmt.Errorf("group: location-view send: %w", err)
	}
	return nil
}

// HandleMSS implements core.MSSHandler.
func (g *LocationView) HandleMSS(ctx core.Context, at core.MSSID, from core.From, msg core.Message) {
	switch m := msg.(type) {
	case lvUp:
		if !from.IsMH {
			panic("group: lvUp must come from a MH")
		}
		g.distribute(ctx, at, from.MH, m.Payload)
	case lvForward:
		g.deliverLocal(ctx, at, m.From, m.Payload, cost.CatAlgorithm)
	case lvFallback:
		// Coordinator distributes on behalf of an out-of-view MSS.
		if at != g.opts.Coordinator {
			panic(fmt.Sprintf("group: fallback sent to mss%d, coordinator is mss%d", int(at), int(g.opts.Coordinator)))
		}
		for _, id := range g.masterSorted() {
			ctx.SendFixed(at, id, lvForward{From: m.From, Payload: m.Payload}, cost.CatStale)
		}
	case lvAddReq:
		g.addReqs++
		st := &g.mss[at]
		req := lvCoordReq{HasAdd: true, Add: m.NewMSS, AddSeq: m.AddSeq}
		if st.pendingDelete && !g.hasLocalMembers(ctx, at) {
			st.pendingDelete = false
			st.deleteInFlight = true
			st.changeSeq++
			req.HasDel = true
			req.Del = at
			req.DelSeq = st.changeSeq
			g.combined++
		}
		ctx.SendFixed(at, g.opts.Coordinator, req, cost.CatLocation)
	case lvCoordReq:
		g.applyAtCoordinator(ctx, at, m)
	case lvFullCopy:
		st := &g.mss[at]
		st.inView = true
		st.deleteInFlight = false
		st.view = make(map[core.MSSID]bool, len(m.View))
		for _, id := range m.View {
			st.view[id] = true
		}
	case lvInc:
		st := &g.mss[at]
		if m.HasDel && m.Del == at {
			st.inView = false
			st.deleteInFlight = false
			st.view = nil
			return
		}
		if !st.inView {
			return // a full copy is in flight; it will carry this change
		}
		if m.HasAdd {
			st.view[m.Add] = true
		}
		if m.HasDel {
			delete(st.view, m.Del)
		}
	default:
		panic(fmt.Sprintf("group: location-view MSS received unexpected message %T", msg))
	}
}

// HandleMH implements core.MHHandler.
func (g *LocationView) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	m, ok := msg.(groupMsg)
	if !ok {
		panic(fmt.Sprintf("group: location-view MH received unexpected message %T", msg))
	}
	g.delivered++
	if g.opts.OnDeliver != nil {
		g.opts.OnDeliver(at, m.From, m.Payload)
	}
}

// OnJoin implements core.MobilityObserver: a member joining a cell outside
// the view triggers the addition protocol through the previous MSS; any
// member joining cancels a withheld deletion for that cell.
func (g *LocationView) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	if !g.isMember[mh] {
		return
	}
	st := &g.mss[mss]
	st.pendingDelete = false
	st.deleteEpoch++
	if st.inView && !st.deleteInFlight {
		return // a move within the view does not change LV(G)
	}
	// "The MH first supplies the id of the MSS M' of its previous cell to
	// M, along with the join() message. M requests M' to notify the group
	// coordinator to include M in LV(G)."
	st.changeSeq++
	ctx.SendFixed(mss, prev, lvAddReq{NewMSS: mss, Member: mh, AddSeq: st.changeSeq}, cost.CatLocation)
}

// OnLeave implements core.MobilityObserver: when the last local member
// leaves, the cell's deletion from the view is requested — withheld for
// CombineWindow so it can be combined with the destination's addition.
func (g *LocationView) OnLeave(ctx core.Context, mss core.MSSID, mh core.MHID) {
	if !g.isMember[mh] {
		return
	}
	st := &g.mss[mss]
	if g.hasLocalMembers(ctx, mss) {
		// Other members remain; the view keeps this cell. Note this runs
		// even when the cell's own view copy has not arrived yet (an
		// addition still in flight): the deletion request below is what
		// keeps the eventual view exact in that race.
		return
	}
	sendDelete := func() {
		cur := &g.mss[mss]
		cur.pendingDelete = false
		cur.deleteInFlight = true
		cur.changeSeq++
		g.deleteReqs++
		ctx.SendFixed(mss, g.opts.Coordinator,
			lvCoordReq{HasDel: true, Del: mss, DelSeq: cur.changeSeq}, cost.CatLocation)
	}
	st.pendingDelete = true
	st.deleteEpoch++
	epoch := st.deleteEpoch
	if g.opts.CombineWindow <= 0 {
		sendDelete()
		return
	}
	ctx.After(g.opts.CombineWindow, func() {
		cur := &g.mss[mss]
		if !cur.pendingDelete || cur.deleteEpoch != epoch || g.hasLocalMembers(ctx, mss) {
			return
		}
		sendDelete()
	})
}

// OnDisconnect implements core.MobilityObserver: a disconnecting member
// counts as leaving its cell for view purposes.
func (g *LocationView) OnDisconnect(ctx core.Context, mss core.MSSID, mh core.MHID) {
	g.OnLeave(ctx, mss, mh)
}

// distribute fans a group message out from the sender's MSS.
func (g *LocationView) distribute(ctx core.Context, at core.MSSID, from core.MHID, payload any) {
	st := &g.mss[at]
	if !st.inView {
		// The sender's cell is not (yet) in the view — its addition is in
		// flight. Route through the coordinator; charged as stale traffic
		// because a settled view never takes this path.
		g.fallbacks++
		ctx.NoteGroupStaleLookup(from, at)
		ctx.SendFixed(at, g.opts.Coordinator, lvFallback{From: from, Payload: payload}, cost.CatStale)
		return
	}
	ids := make([]core.MSSID, 0, len(st.view))
	for id := range st.view {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id == at {
			continue
		}
		ctx.SendFixed(at, id, lvForward{From: from, Payload: payload}, cost.CatAlgorithm)
	}
	g.deliverLocal(ctx, at, from, payload, cost.CatAlgorithm)
}

// deliverLocal hands the message to every local member except the sender.
func (g *LocationView) deliverLocal(ctx core.Context, at core.MSSID, from core.MHID, payload any, cat cost.Category) {
	for _, mh := range ctx.LocalMHs(at) {
		if mh == from || !g.isMember[mh] {
			continue
		}
		if err := ctx.SendToLocalMH(at, mh, groupMsg{From: from, Payload: payload}, cat); err != nil {
			panic(fmt.Sprintf("group: location-view local delivery: %v", err))
		}
	}
}

// applyAtCoordinator serialises a view change and distributes updates.
func (g *LocationView) applyAtCoordinator(ctx core.Context, at core.MSSID, req lvCoordReq) {
	if at != g.opts.Coordinator {
		panic(fmt.Sprintf("group: view change sent to mss%d, coordinator is mss%d", int(at), int(g.opts.Coordinator)))
	}
	// Apply each component in the issuing cell's causal order: a deletion
	// stamped later than an addition wins even if it arrives first.
	changed := false
	addAccepted := false
	added, removed := core.MSSID(-1), core.MSSID(-1)
	if req.HasAdd && req.AddSeq > g.lastSeq[req.Add] {
		g.lastSeq[req.Add] = req.AddSeq
		addAccepted = true
		if !g.master[req.Add] {
			g.master[req.Add] = true
			changed = true
			added = req.Add
		}
	}
	if req.HasDel && req.DelSeq > g.lastSeq[req.Del] {
		g.lastSeq[req.Del] = req.DelSeq
		if g.master[req.Del] {
			delete(g.master, req.Del)
			changed = true
			removed = req.Del
		}
	}
	if len(g.master) > g.maxView {
		g.maxView = len(g.master)
	}
	if addAccepted {
		// The newly included MSS receives the latest full copy (idempotent
		// if it already had one).
		ctx.SendFixed(at, req.Add, lvFullCopy{View: g.View()}, cost.CatLocation)
	}
	if !changed {
		return
	}
	g.updates++
	ctx.NoteGroupViewUpdate(added, removed, len(g.master))
	inc := lvInc{HasAdd: addAccepted, Add: req.Add, HasDel: req.HasDel && !g.master[req.Del], Del: req.Del}
	for _, id := range g.masterSorted() {
		if id == at || (req.HasAdd && id == req.Add) {
			continue // coordinator updates locally; Add got the full copy
		}
		ctx.SendFixed(at, id, inc, cost.CatLocation)
	}
	if req.HasDel && req.Del != at {
		// Tell the removed MSS to drop its copy.
		ctx.SendFixed(at, req.Del, inc, cost.CatLocation)
	}
	// The coordinator's own copy (when it hosts members) tracks the master.
	if g.master[at] {
		g.mss[at].inView = true
		g.mss[at].view = g.cloneMaster()
	} else if req.HasDel && req.Del == at {
		g.mss[at].inView = false
		g.mss[at].view = nil
	}
}

func (g *LocationView) hasLocalMembers(ctx core.Context, at core.MSSID) bool {
	for _, mh := range ctx.LocalMHs(at) {
		if g.isMember[mh] {
			return true
		}
	}
	return false
}

func (g *LocationView) cloneMaster() map[core.MSSID]bool {
	out := make(map[core.MSSID]bool, len(g.master))
	for id := range g.master {
		out[id] = true
	}
	return out
}

func (g *LocationView) masterSorted() []core.MSSID {
	return g.View()
}
