package group

import (
	"testing"
	"testing/quick"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
	"mobiledist/internal/workload"
)

// TestPropertyLocationViewExactAfterQuiescence: after any schedule of member
// moves drains, the coordinator's LV(G) is exactly the set of cells hosting
// at least one member, and every in-view MSS holds an identical copy.
func TestPropertyLocationViewExactAfterQuiescence(t *testing.T) {
	check := func(seed uint64, plan []uint8) bool {
		const (
			m = 6
			n = 8
			g = 5
		)
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
			Coordinator:   core.MSSID(m - 1),
			CombineWindow: 150,
		})
		if err != nil {
			return false
		}
		for i, op := range plan {
			if i >= 25 {
				break
			}
			mh := core.MHID(op % g)
			to := core.MSSID((int(op) / 7) % m)
			sys.Schedule(sim.Time(i*37), func() {
				if _, st := sys.Where(mh); st == core.StatusConnected {
					_ = sys.Move(mh, to)
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}

		// Exact view: cells hosting >= 1 member.
		want := make(map[core.MSSID]bool)
		for i := 0; i < g; i++ {
			at, st := sys.Where(core.MHID(i))
			if st != core.StatusConnected {
				return false
			}
			want[at] = true
		}
		view := lv.View()
		if len(view) != len(want) {
			return false
		}
		for _, id := range view {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLocationViewDeliversAfterQuiescence: once the view settles, a
// group message reaches exactly the other members, wherever they ended up.
func TestPropertyLocationViewDeliversAfterQuiescence(t *testing.T) {
	check := func(seed uint64, plan []uint8) bool {
		const (
			m = 5
			n = 8
			g = 4
		)
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		log := newDeliveryLog()
		lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
			Options:       log.opts(),
			Coordinator:   core.MSSID(0),
			CombineWindow: 100,
		})
		if err != nil {
			return false
		}
		for i, op := range plan {
			if i >= 15 {
				break
			}
			mh := core.MHID(op % g)
			to := core.MSSID((int(op) / 5) % m)
			sys.Schedule(sim.Time(i*43), func() {
				if _, st := sys.Where(mh); st == core.StatusConnected {
					_ = sys.Move(mh, to)
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		// Quiescent now; send one message.
		if err := lv.Send(core.MHID(1), "ping"); err != nil {
			return false
		}
		if err := sys.Run(); err != nil {
			return false
		}
		if lv.Delivered() != g-1 {
			return false
		}
		for _, mh := range membersRange(g) {
			want := 1
			if mh == 1 {
				want = 0
			}
			if log.byMember[mh] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAlwaysInformDirectoriesConverge: after moves drain, every
// member's directory agrees with reality.
func TestPropertyAlwaysInformDirectoriesConverge(t *testing.T) {
	check := func(seed uint64, plan []uint8) bool {
		const (
			m = 4
			n = 6
			g = 4
		)
		cfg := core.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return false
		}
		ai, err := NewAlwaysInform(sys, membersRange(g), Options{})
		if err != nil {
			return false
		}
		for i, op := range plan {
			if i >= 12 {
				break
			}
			mh := core.MHID(op % g)
			to := core.MSSID((int(op) / 5) % m)
			sys.Schedule(sim.Time(i*51), func() {
				if _, st := sys.Where(mh); st == core.StatusConnected {
					_ = sys.Move(mh, to)
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		for _, owner := range membersRange(g) {
			dir, err := ai.Directory(owner)
			if err != nil {
				return false
			}
			for _, member := range membersRange(g) {
				at, _ := sys.Where(member)
				if dir[member] != at {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocationViewConcurrentSignificantMoves(t *testing.T) {
	// Two members leave their (sole-member) cells for two fresh cells at
	// the same instant: the coordinator must serialize both updates and all
	// copies must converge to the exact view.
	const (
		m = 8
		n = 4
		g = 4
	)
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh)) } // one per cell 0..3
	cfg := core.DefaultConfig(m, n)
	cfg.Placement = place
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(7),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := sys.Move(core.MHID(0), core.MSSID(4)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Move(core.MHID(1), core.MSSID(5)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	view := lv.View()
	want := []core.MSSID{2, 3, 4, 5}
	if len(view) != len(want) {
		t.Fatalf("view = %v, want %v", view, want)
	}
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("view = %v, want %v", view, want)
		}
	}
	// Both were combined add+delete requests.
	if got := lv.CombinedRequests(); got != 2 {
		t.Errorf("combined = %d, want 2", got)
	}
	// A message must now reach all three other members.
	if err := lv.Send(core.MHID(2), "x"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lv.Delivered() != g-1 {
		t.Errorf("delivered = %d, want %d", lv.Delivered(), g-1)
	}
}

func TestLocationViewDisconnectedSoleMemberDeletesCell(t *testing.T) {
	const (
		m = 4
		n = 3
		g = 3
	)
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh)) }
	cfg := core.DefaultConfig(m, n)
	cfg.Placement = place
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Coordinator:   core.MSSID(3),
		CombineWindow: 50,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := sys.Disconnect(core.MHID(2)); err != nil {
		t.Fatalf("Disconnect: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.ViewSize(); got != 2 {
		t.Errorf("|LV| = %d after sole member disconnected, want 2", got)
	}
	// Reconnecting elsewhere re-adds the new cell.
	if err := sys.Reconnect(core.MHID(2), core.MSSID(0), true); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.ViewSize(); got != 2 { // cells 0 (now two members) and 1
		t.Errorf("|LV| = %d after reconnect, want 2", got)
	}
	view := lv.View()
	if view[0] != 0 || view[1] != 1 {
		t.Errorf("view = %v, want [0 1]", view)
	}
}

func TestGroupStrategiesUnderChurnStillDeliverToConnected(t *testing.T) {
	// With one member churning, messages sent while it is away are lost to
	// it (group semantics have no store-and-forward) but every connected
	// member still gets every message.
	const (
		m = 4
		n = 6
		g = 4
	)
	cfg := core.DefaultConfig(m, n)
	cfg.Seed = 23
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	log := newDeliveryLog()
	lvg, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(3),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if _, err := workload.NewChurn(sys, workload.ChurnConfig{
		MHs:       []core.MHID{3},
		UpFor:     workload.FixedSpan(500),
		DownFor:   workload.FixedSpan(2_000),
		Cycles:    1,
		KnowsPrev: true,
	}); err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	// Send one message while mh3 is surely disconnected.
	sys.Schedule(1_500, func() {
		if err := lvg.Send(core.MHID(0), "away"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, mh := range []core.MHID{1, 2} {
		if log.byMember[mh] != 1 {
			t.Errorf("mh%d got %d copies, want 1", int(mh), log.byMember[mh])
		}
	}
	if log.byMember[core.MHID(3)] != 0 {
		t.Errorf("disconnected mh3 got %d copies, want 0", log.byMember[core.MHID(3)])
	}
	// No stale cost should hide algorithm traffic miscounting.
	if alg := sys.Meter().CategoryCost(cost.CatAlgorithm, cfg.Params); alg <= 0 {
		t.Error("no algorithm cost recorded")
	}
}
