package group

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

func newTestSystem(t *testing.T, m, n int, place func(core.MHID) core.MSSID) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(m, n)
	cfg.Placement = place
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func membersRange(n int) []core.MHID {
	out := make([]core.MHID, n)
	for i := range out {
		out[i] = core.MHID(i)
	}
	return out
}

type deliveryLog struct {
	byMember map[core.MHID]int
	total    int
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{byMember: make(map[core.MHID]int)}
}

func (d *deliveryLog) opts() Options {
	return Options{OnDeliver: func(at, from core.MHID, payload any) {
		d.byMember[at]++
		d.total++
	}}
}

func TestPureSearchCostMatchesAnalytic(t *testing.T) {
	const (
		m = 4
		n = 10
		g = 6
	)
	sys := newTestSystem(t, m, n, nil)
	log := newDeliveryLog()
	ps, err := NewPureSearch(sys, membersRange(g), log.opts())
	if err != nil {
		t.Fatalf("NewPureSearch: %v", err)
	}
	if err := ps.Send(core.MHID(0), "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ps.Delivered() != g-1 {
		t.Fatalf("delivered = %d, want %d", ps.Delivered(), g-1)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticPureSearchGroupMsg(g, p)
	if got != want {
		t.Errorf("pure-search cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
}

func TestAlwaysInformCostMatchesAnalytic(t *testing.T) {
	const (
		m = 4
		n = 10
		g = 6
	)
	sys := newTestSystem(t, m, n, nil)
	log := newDeliveryLog()
	ai, err := NewAlwaysInform(sys, membersRange(g), log.opts())
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	if err := ai.Send(core.MHID(0), "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ai.Delivered() != g-1 {
		t.Fatalf("delivered = %d, want %d", ai.Delivered(), g-1)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticAlwaysInformGroupMsg(g, p)
	if got != want {
		t.Errorf("always-inform cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
	if stale := sys.Meter().Count(cost.CatStale, cost.KindSearch); stale != 0 {
		t.Errorf("stale searches = %d, want 0 (no mobility)", stale)
	}
}

func TestAlwaysInformUpdateCostMatchesAnalytic(t *testing.T) {
	const (
		m = 4
		n = 10
		g = 5
	)
	sys := newTestSystem(t, m, n, nil)
	log := newDeliveryLog()
	ai, err := NewAlwaysInform(sys, membersRange(g), log.opts())
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	// One move: the mover broadcasts a location update costing the same as
	// a group message.
	if err := sys.Move(core.MHID(2), core.MSSID(3)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatLocation, p)
	want := cost.AnalyticAlwaysInformGroupMsg(g, p)
	if got != want {
		t.Errorf("location update cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
	// Every member's directory must now place mh2 at mss3.
	for _, mh := range membersRange(g) {
		dir, err := ai.Directory(mh)
		if err != nil {
			t.Fatalf("Directory: %v", err)
		}
		if dir[core.MHID(2)] != core.MSSID(3) {
			t.Errorf("mh%d's directory has mh2 at mss%d, want mss3", int(mh), int(dir[core.MHID(2)]))
		}
	}
}

func TestAlwaysInformStaleDirectoryStillDelivers(t *testing.T) {
	const g = 4
	sys := newTestSystem(t, 4, 8, nil)
	log := newDeliveryLog()
	ai, err := NewAlwaysInform(sys, membersRange(g), log.opts())
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	// Send while a member's location update is still in flight: the copy
	// routed to the old cell is re-forwarded with a (stale-charged) search.
	if err := sys.Move(core.MHID(1), core.MSSID(3)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := ai.Send(core.MHID(0), "x"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ai.Delivered() != g-1 {
		t.Errorf("delivered = %d, want %d (stale copy must still arrive)", ai.Delivered(), g-1)
	}
}

func singleCellPlacement(at core.MSSID) func(core.MHID) core.MSSID {
	return func(core.MHID) core.MSSID { return at }
}

func TestLocationViewCostMatchesAnalytic(t *testing.T) {
	const (
		m = 6
		n = 12
		g = 8
	)
	// Members concentrated in two cells: |LV| = 2 while |G| = 8.
	place := func(mh core.MHID) core.MSSID {
		if int(mh) < 4 {
			return 0
		}
		if int(mh) < g {
			return 1
		}
		return core.MSSID(int(mh) % m)
	}
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:     log.opts(),
		Coordinator: core.MSSID(5),
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if got := lv.ViewSize(); got != 2 {
		t.Fatalf("initial |LV| = %d, want 2", got)
	}
	if err := lv.Send(core.MHID(0), "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lv.Delivered() != g-1 {
		t.Fatalf("delivered = %d, want %d", lv.Delivered(), g-1)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatAlgorithm, p)
	want := cost.AnalyticLocationViewGroupMsg(g, 2, p)
	if got != want {
		t.Errorf("location-view cost = %v, want analytic %v\n%s", got, want, sys.Meter().Report(p))
	}
}

func TestLocationViewSignificantMoveWithinBound(t *testing.T) {
	const (
		m = 6
		n = 10
		g = 5
	)
	// All members start in cells 0..2 (|LV| = 3, no cell is sole-member for
	// mh0's cell 0 which also hosts mh3).
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh) % 3) }
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(5),
		CombineWindow: 200,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	lvBefore := lv.ViewSize()

	// mh0 moves from cell 0 (shared with mh3) to cell 4, outside the view:
	// a pure addition.
	if err := sys.Move(core.MHID(0), core.MSSID(4)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.ViewSize(); got != lvBefore+1 {
		t.Fatalf("|LV| = %d after addition, want %d", got, lvBefore+1)
	}
	p := sys.Config().Params
	got := sys.Meter().CategoryCost(cost.CatLocation, p)
	bound := cost.AnalyticLocationViewUpdateBound(lv.ViewSize(), p)
	if got > bound {
		t.Errorf("view update cost = %v exceeds paper bound %v\n%s", got, bound, sys.Meter().Report(p))
	}
	if got == 0 {
		t.Error("view update cost = 0, expected location traffic")
	}
}

func TestLocationViewCombinedMove(t *testing.T) {
	const (
		m = 5
		n = 6
		g = 3
	)
	// mh2 is the sole member of cell 2; it moves to cell 4, outside the
	// view: the previous MSS must send one combined add+delete request.
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh) % 3) }
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(0),
		CombineWindow: 500,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := sys.Move(core.MHID(2), core.MSSID(4)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.CombinedRequests(); got != 1 {
		t.Errorf("combined requests = %d, want 1", got)
	}
	if got := lv.ViewSize(); got != 3 {
		t.Errorf("|LV| = %d, want 3 (cell 2 out, cell 4 in)", got)
	}
	view := lv.View()
	wantView := []core.MSSID{0, 1, 4}
	if len(view) != len(wantView) {
		t.Fatalf("view = %v, want %v", view, wantView)
	}
	for i := range view {
		if view[i] != wantView[i] {
			t.Fatalf("view = %v, want %v", view, wantView)
		}
	}
}

func TestLocationViewInsignificantMoveIsFree(t *testing.T) {
	const (
		m = 4
		n = 8
		g = 4
	)
	// All members in cells 0 and 1, two in each. A move between view cells
	// by a non-sole member changes nothing and sends no location traffic.
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh) % 2) }
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(3),
		CombineWindow: 200,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := sys.Move(core.MHID(0), core.MSSID(1)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sys.Meter().CategoryCost(cost.CatLocation, sys.Config().Params); got != 0 {
		t.Errorf("location traffic = %v for insignificant move, want 0\n%s",
			got, sys.Meter().Report(sys.Config().Params))
	}
	if got := lv.Updates(); got != 0 {
		t.Errorf("view updates = %d, want 0", got)
	}
	// The view keeps both cells: cell 0 still hosts mh2.
	if got := lv.ViewSize(); got != 2 {
		t.Errorf("|LV| = %d, want 2", got)
	}
}

func TestLocationViewSoleDepartureDeletesCell(t *testing.T) {
	const (
		m = 4
		n = 6
		g = 3
	)
	// mh2 alone in cell 2 moves to cell 0 (inside the view): deletion only.
	place := func(mh core.MHID) core.MSSID { return core.MSSID(int(mh) % 3) }
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(3),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := sys.Move(core.MHID(2), core.MSSID(0)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.ViewSize(); got != 2 {
		t.Errorf("|LV| = %d, want 2 after sole departure", got)
	}
	for _, id := range lv.View() {
		if id == 2 {
			t.Errorf("view %v still contains deleted cell 2", lv.View())
		}
	}
}

func TestLocationViewDeliveryAfterMoves(t *testing.T) {
	const (
		m = 5
		n = 8
		g = 5
	)
	sys := newTestSystem(t, m, n, singleCellPlacement(0))
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(4),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	// Scatter members, let the view settle, then send.
	if err := sys.Move(core.MHID(1), core.MSSID(1)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.Move(core.MHID(2), core.MSSID(2)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.RunUntil(5_000); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := lv.ViewSize(); got != 3 {
		t.Fatalf("|LV| = %d after scatter, want 3", got)
	}
	if err := lv.Send(core.MHID(3), "hi"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lv.Delivered() != g-1 {
		t.Errorf("delivered = %d, want %d", lv.Delivered(), g-1)
	}
	for _, mh := range membersRange(g) {
		if mh == 3 {
			continue
		}
		if log.byMember[mh] != 1 {
			t.Errorf("mh%d received %d copies, want 1", int(mh), log.byMember[mh])
		}
	}
}

func TestLocationViewSenderJustArrivedFallsBack(t *testing.T) {
	const (
		m = 5
		n = 6
		g = 3
	)
	place := func(mh core.MHID) core.MSSID { return 0 }
	sys := newTestSystem(t, m, n, place)
	log := newDeliveryLog()
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Options:       log.opts(),
		Coordinator:   core.MSSID(4),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	// mh0 moves to an out-of-view cell and sends immediately on arrival,
	// before its cell's full view copy can possibly arrive.
	if err := sys.Move(core.MHID(0), core.MSSID(2)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := lv.Send(core.MHID(0), "eager"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lv.Fallbacks() == 0 {
		t.Error("expected a coordinator fallback for the eager sender")
	}
	if lv.Delivered() != g-1 {
		t.Errorf("delivered = %d, want %d", lv.Delivered(), g-1)
	}
}

func TestGroupCommRejectsNonMembers(t *testing.T) {
	sys := newTestSystem(t, 3, 6, nil)
	log := newDeliveryLog()
	comms := make([]Comm, 0, 3)
	ps, err := NewPureSearch(sys, membersRange(3), log.opts())
	if err != nil {
		t.Fatalf("NewPureSearch: %v", err)
	}
	ai, err := NewAlwaysInform(sys, membersRange(3), log.opts())
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	lv, err := NewLocationView(sys, membersRange(3), LocationViewOptions{Options: log.opts()})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	comms = append(comms, ps, ai, lv)
	for _, c := range comms {
		if err := c.Send(core.MHID(5), "x"); err == nil {
			t.Errorf("%s: Send by non-member succeeded, want error", c.Name())
		}
	}
}
