package group

import (
	"testing"

	"mobiledist/internal/core"
	"mobiledist/internal/obs"
)

// kindCounts tallies the recorded events per kind.
func kindCounts(tr *obs.Tracer) map[obs.EventKind]int64 {
	out := make(map[obs.EventKind]int64)
	for _, ev := range tr.Events() {
		out[ev.Kind]++
	}
	return out
}

// TestAlwaysInformEventsMatchUpdateTally pins the group-strategy events to
// the strategy's own counters (the numbers internal/experiments reports):
// one group-inform event per location-update broadcast, nothing else from
// the group taxonomy.
func TestAlwaysInformEventsMatchUpdateTally(t *testing.T) {
	const (
		m = 5
		n = 10
		g = 6
	)
	tracer := obs.NewTracer(0)
	cfg := core.DefaultConfig(m, n)
	cfg.Obs = tracer
	sys := core.MustNewSystem(cfg)
	ai, err := NewAlwaysInform(sys, membersRange(g), Options{})
	if err != nil {
		t.Fatalf("NewAlwaysInform: %v", err)
	}
	// Three member moves broadcast updates; a non-member move must not.
	for _, mv := range []struct {
		mh  core.MHID
		mss core.MSSID
	}{{0, 2}, {3, 4}, {5, 1}, {core.MHID(g + 1), 3}} {
		if err := sys.Move(mv.mh, mv.mss); err != nil {
			t.Fatalf("Move: %v", err)
		}
	}
	if err := ai.Send(core.MHID(1), "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	counts := kindCounts(tracer)
	if ai.Updates() != 3 {
		t.Fatalf("Updates = %d, want 3 (three member moves)", ai.Updates())
	}
	if counts[obs.EvGroupInform] != ai.Updates() {
		t.Errorf("group-inform events = %d, want Updates() = %d",
			counts[obs.EvGroupInform], ai.Updates())
	}
	if counts[obs.EvGroupViewUpdate] != 0 || counts[obs.EvGroupStaleLookup] != 0 {
		t.Errorf("always-inform emitted view events: view-update=%d stale-lookup=%d",
			counts[obs.EvGroupViewUpdate], counts[obs.EvGroupStaleLookup])
	}
	// The inform operands name the mover and its new cell.
	informs := obs.Filter(tracer.Events(), obs.KindFilter(obs.EvGroupInform))
	if informs[0].A != 0 || informs[0].B != 2 {
		t.Errorf("first inform = (mh%d, mss%d), want (mh0, mss2)", informs[0].A, informs[0].B)
	}
}

// TestLocationViewEventsMatchTallies does the same for the location-view
// strategy: view-update events track Updates(), stale-lookup events track
// Fallbacks(), and both fire in this scenario.
func TestLocationViewEventsMatchTallies(t *testing.T) {
	const (
		m = 5
		n = 6
		g = 3
	)
	tracer := obs.NewTracer(0)
	cfg := core.DefaultConfig(m, n)
	cfg.Obs = tracer
	cfg.Placement = singleCellPlacement(0)
	sys := core.MustNewSystem(cfg)
	lv, err := NewLocationView(sys, membersRange(g), LocationViewOptions{
		Coordinator:   core.MSSID(m - 1),
		CombineWindow: 100,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	// A settled significant move first, then the eager-sender scenario: a
	// member sends right after arriving in an out-of-view cell, before its
	// cell's view copy can arrive — the coordinator fallback.
	if err := sys.Move(core.MHID(1), core.MSSID(1)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := sys.RunUntil(5_000); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := sys.Move(core.MHID(0), core.MSSID(2)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := lv.Send(core.MHID(0), "eager"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	counts := kindCounts(tracer)
	if lv.Updates() == 0 || lv.Fallbacks() == 0 {
		t.Fatalf("scenario too quiet: updates=%d fallbacks=%d", lv.Updates(), lv.Fallbacks())
	}
	if counts[obs.EvGroupViewUpdate] != lv.Updates() {
		t.Errorf("group-view-update events = %d, want Updates() = %d",
			counts[obs.EvGroupViewUpdate], lv.Updates())
	}
	if counts[obs.EvGroupStaleLookup] != lv.Fallbacks() {
		t.Errorf("group-stale-lookup events = %d, want Fallbacks() = %d",
			counts[obs.EvGroupStaleLookup], lv.Fallbacks())
	}
	if counts[obs.EvGroupInform] != 0 {
		t.Errorf("location view emitted %d group-inform events, want 0", counts[obs.EvGroupInform])
	}
	// View-update operands carry the view delta; sizes stay within [1, m].
	for _, ev := range obs.Filter(tracer.Events(), obs.KindFilter(obs.EvGroupViewUpdate)) {
		if ev.A == -1 && ev.B == -1 {
			t.Errorf("view-update event with no delta: %+v", ev)
		}
		if ev.C < 1 || ev.C > m {
			t.Errorf("view-update size %d out of range [1, %d]", ev.C, m)
		}
	}
}
