// Package group implements the paper's three strategies for managing the
// location of a group of mobile hosts (Section 4):
//
//   - PureSearch (§4.1): no location state; a group message is a separate
//     searched point-to-point message to every member. Mobility is free,
//     every message pays (|G|−1)·(2·Cwireless + Csearch).
//   - AlwaysInform (§4.2): every member keeps a location directory LD(G)
//     with one entry per member; group messages route directly
//     ((|G|−1)·(2·Cwireless + Cfixed)), but every move broadcasts a
//     location update of the same cost, so the effective per-message cost
//     grows with the mobility-to-message ratio MOB/MSG.
//   - LocationView (§4.3): the proposed strategy. The static tier maintains
//     LV(G) — the set of MSSs hosting at least one member — serialized
//     through a coordinator MSS. Only significant moves (into a cell
//     outside the view, or the sole local member leaving a cell) update the
//     view, at most (|LV|+3)·Cfixed each; a group message costs
//     (|LV|−1)·Cfixed + |G|·Cwireless.
//
// All three implement Comm, so workloads and experiments swap them freely.
package group

import (
	"fmt"

	"mobiledist/internal/core"
)

// Comm is the common surface of the three group communication strategies.
type Comm interface {
	core.Algorithm
	// Send delivers payload to every group member other than from.
	Send(from core.MHID, payload any) error
	// Sent reports how many group messages have been initiated.
	Sent() int64
	// Delivered reports how many member deliveries have completed.
	Delivered() int64
}

// Options configure delivery callbacks shared by all strategies.
type Options struct {
	// OnDeliver fires for each copy of a group message delivered to a
	// member.
	OnDeliver func(at, from core.MHID, payload any)
}

// groupMsg is the common payload envelope for group traffic.
type groupMsg struct {
	From    core.MHID
	Payload any
}

// memberSet builds the membership lookup used by every strategy.
func memberSet(members []core.MHID) (map[core.MHID]bool, error) {
	set := make(map[core.MHID]bool, len(members))
	for _, mh := range members {
		if set[mh] {
			return nil, fmt.Errorf("group: duplicate member mh%d", int(mh))
		}
		set[mh] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("group: empty membership")
	}
	return set, nil
}

// initialLocations reads the current cell of every member from the network
// (used to seed directories and views before any traffic flows; the paper
// assumes an existing consistent view).
func initialLocations(ctx core.Context, members map[core.MHID]bool) map[core.MHID]core.MSSID {
	locs := make(map[core.MHID]core.MSSID, len(members))
	for m := 0; m < ctx.M(); m++ {
		for _, mh := range ctx.LocalMHs(core.MSSID(m)) {
			if members[mh] {
				locs[mh] = core.MSSID(m)
			}
		}
	}
	return locs
}
