package group

import (
	"fmt"

	"mobiledist/internal/core"
	"mobiledist/internal/cost"
)

// locUpdate is the location update a member broadcasts to the group after a
// move (§4.2).
type locUpdate struct {
	Member core.MHID
	At     core.MSSID
}

// AlwaysInform is the location-directory strategy (§4.2): every member
// maintains LD(G), a map from member to its current MSS. Group messages
// route directly through the recorded MSS (2·Cwireless + Cfixed per member);
// every move broadcasts a location update of the same cost, so the
// effective cost per group message grows with MOB/MSG.
type AlwaysInform struct {
	ctx      core.Context
	opts     Options
	members  []core.MHID
	isMember map[core.MHID]bool

	// ld holds each member's copy of the location directory, indexed by the
	// member's position in members (per-slot state for live-runtime
	// compatibility).
	ld    []map[core.MHID]core.MSSID
	index map[core.MHID]int

	sent      int64
	delivered int64
	updates   int64
}

var (
	_ Comm                  = (*AlwaysInform)(nil)
	_ core.MHHandler        = (*AlwaysInform)(nil)
	_ core.MobilityObserver = (*AlwaysInform)(nil)
)

// NewAlwaysInform registers an always-inform group over the given members,
// seeding every member's directory from current locations.
func NewAlwaysInform(reg core.Registrar, members []core.MHID, opts Options) (*AlwaysInform, error) {
	set, err := memberSet(members)
	if err != nil {
		return nil, err
	}
	g := &AlwaysInform{
		opts:     opts,
		members:  append([]core.MHID(nil), members...),
		isMember: set,
		index:    make(map[core.MHID]int, len(members)),
	}
	g.ctx = reg.Register(g)
	locs := initialLocations(g.ctx, set)
	g.ld = make([]map[core.MHID]core.MSSID, len(g.members))
	for i, mh := range g.members {
		g.index[mh] = i
		dir := make(map[core.MHID]core.MSSID, len(locs))
		for member, at := range locs {
			dir[member] = at
		}
		g.ld[i] = dir
	}
	return g, nil
}

// Name implements core.Algorithm.
func (g *AlwaysInform) Name() string { return "group/always-inform" }

// Sent implements Comm.
func (g *AlwaysInform) Sent() int64 { return g.sent }

// Delivered implements Comm.
func (g *AlwaysInform) Delivered() int64 { return g.delivered }

// Updates reports how many location-update broadcasts members have sent.
func (g *AlwaysInform) Updates() int64 { return g.updates }

// Directory returns a copy of member mh's LD(G) (for tests).
func (g *AlwaysInform) Directory(mh core.MHID) (map[core.MHID]core.MSSID, error) {
	slot, ok := g.index[mh]
	if !ok {
		return nil, fmt.Errorf("group: mh%d is not a member", int(mh))
	}
	out := make(map[core.MHID]core.MSSID, len(g.ld[slot]))
	for k, v := range g.ld[slot] {
		out[k] = v
	}
	return out, nil
}

// Send implements Comm: one directory-routed copy per other member.
func (g *AlwaysInform) Send(from core.MHID, payload any) error {
	slot, ok := g.index[from]
	if !ok {
		return fmt.Errorf("group: mh%d is not a member", int(from))
	}
	g.sent++
	msg := groupMsg{From: from, Payload: payload}
	return g.fanOut(slot, from, msg, cost.CatAlgorithm)
}

// fanOut sends msg from the member in slot to every other member through
// the sender's directory.
func (g *AlwaysInform) fanOut(slot int, from core.MHID, msg core.Message, cat cost.Category) error {
	dir := g.ld[slot]
	for _, to := range g.members {
		if to == from {
			continue
		}
		via, ok := dir[to]
		if !ok {
			return fmt.Errorf("group: mh%d has no directory entry for mh%d", int(from), int(to))
		}
		if err := g.ctx.SendMHViaMSS(from, via, to, msg, cat); err != nil {
			return fmt.Errorf("group: always-inform send: %w", err)
		}
	}
	return nil
}

// HandleMH implements core.MHHandler.
func (g *AlwaysInform) HandleMH(_ core.Context, at core.MHID, msg core.Message) {
	slot, ok := g.index[at]
	if !ok {
		panic(fmt.Sprintf("group: always-inform delivery to non-member mh%d", int(at)))
	}
	switch m := msg.(type) {
	case groupMsg:
		g.delivered++
		if g.opts.OnDeliver != nil {
			g.opts.OnDeliver(at, m.From, m.Payload)
		}
	case locUpdate:
		g.ld[slot][m.Member] = m.At
	default:
		panic(fmt.Sprintf("group: always-inform received unexpected message %T", msg))
	}
}

// OnJoin implements core.MobilityObserver: after a move (or reconnect) the
// member broadcasts its new location to the whole group, updating its own
// entry locally.
func (g *AlwaysInform) OnJoin(ctx core.Context, mss core.MSSID, mh core.MHID, prev core.MSSID, wasDisconnected bool) {
	slot, ok := g.index[mh]
	if !ok {
		return
	}
	g.ld[slot][mh] = mss
	g.updates++
	ctx.NoteGroupInform(mh, mss)
	update := locUpdate{Member: mh, At: mss}
	if err := g.fanOut(slot, mh, update, cost.CatLocation); err != nil {
		panic(fmt.Sprintf("group: always-inform location update: %v", err))
	}
}

// OnLeave implements core.MobilityObserver.
func (g *AlwaysInform) OnLeave(core.Context, core.MSSID, core.MHID) {}

// OnDisconnect implements core.MobilityObserver.
func (g *AlwaysInform) OnDisconnect(core.Context, core.MSSID, core.MHID) {}
