# Development targets. `make ci` is the gate every change must pass: vet,
# build, race-enabled tests, and a short benchmark smoke over the kernel
# hot path (catches accidental allocation regressions without taking
# benchmark-grade time).

GO ?= go

.PHONY: ci vet staticcheck build test race bench bench-smoke fuzz chaos soak tables

ci: vet staticcheck build test race chaos bench-smoke

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Runs when the staticcheck binary is on PATH;
# environments without it (e.g. hermetic containers) skip with a notice
# instead of failing, so `make ci` stays runnable everywhere.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass over the perf-tracked surfaces (see DESIGN.md
# "Performance architecture").
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernel' -benchmem ./internal/sim
	$(GO) test -run xxx -bench 'BenchmarkRouteMHToMH|BenchmarkSystemChurn' -benchmem ./internal/core
	$(GO) test -run xxx -bench 'BenchmarkAll' -benchmem ./internal/experiments

# Quick smoke: does the kernel hot path still run and stay allocation-free?
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkKernel' -benchtime 100x ./internal/sim

# Short fuzz pass over the kernel heap oracle and scheduler invariants.
fuzz:
	$(GO) test -run xxx -fuzz FuzzKernelHeapOracle -fuzztime 30s ./internal/sim

# Chaos conformance: the substrate-parity invariants re-run under seeded
# fault plans (wireless loss, link flaps, MSS crash/restart) on the
# simulator, the live runtime, and the TCP network runtime, race detector
# on. See DESIGN.md §8 and §10.
chaos:
	$(GO) test -race -run 'TestChaos' -count 1 ./internal/conformance/
	$(GO) test -race -run 'Test' -count 1 ./internal/faults/
	$(GO) test -race -run 'Test' -count 1 ./internal/netrt/ ./internal/wire/

# Extended loopback soak: churn + CS traffic + fault injection over real
# TCP sockets for 15s under the race detector (the same test runs for ~2s
# in the regular suite; see DESIGN.md §10). Not part of `make ci` so CI
# stays bounded.
soak:
	$(GO) test -race -run 'TestLoopbackSoak' -count 1 ./internal/netrt/ -soak 15s

# Regenerate the experiment tables (parallel driver, deterministic output).
tables:
	$(GO) run ./cmd/mobilexp -markdown
