# Development targets. `make ci` is the gate every change must pass: vet,
# build, race-enabled tests, and a short benchmark smoke over the kernel
# hot path (catches accidental allocation regressions without taking
# benchmark-grade time).

GO ?= go

.PHONY: ci vet staticcheck build test race bench bench-smoke bench-scale bench-snapshot bench-check bench-delta scale-smoke fuzz fuzz-short chaos chaos-net chaos-udp chaos-dtn soak tables

ci: vet staticcheck build test race chaos chaos-net chaos-udp chaos-dtn bench-smoke scale-smoke fuzz-short bench-check

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Runs when the staticcheck binary is on PATH;
# environments without it (e.g. hermetic containers) skip with a notice
# instead of failing, so `make ci` stays runnable everywhere.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass over the perf-tracked surfaces (see DESIGN.md
# "Performance architecture").
bench:
	$(GO) test -run xxx -bench 'BenchmarkKernel' -benchmem ./internal/sim
	$(GO) test -run xxx -bench 'BenchmarkRouteMHToMH|BenchmarkSystemChurn' -benchmem ./internal/core
	$(GO) test -run xxx -bench 'BenchmarkAll' -benchmem ./internal/experiments

# Quick smoke: does the kernel hot path still run and stay allocation-free?
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkKernel' -benchtime 100x ./internal/sim

# Scale-suite smoke: generator determinism + the N=10^4 points of every
# traffic shape on both kernels (-short skips the 10^5/10^6 sizes), plus a
# driver pass of the same points through mobilexp -scale so the recorded
# delivery-record path is exercised end to end on every change.
scale-smoke:
	$(GO) test -run 'TestScale' -count 1 ./internal/workload/
	$(GO) test -run xxx -bench 'BenchmarkScale' -benchtime 1x -short .
	$(GO) run ./cmd/mobilexp -scale -scale-max 10000 -o /dev/null

# Full scale trajectory (route/churn/search-chase at N=10^4..10^6, both
# kernels), recorded to BENCH_scale.json. Minutes of wall clock; not in ci.
# The outgoing snapshot is kept as BENCH_scale.prev.json so bench-delta can
# compare the kernel ratios across the re-record.
bench-scale:
	@if [ -f BENCH_scale.json ]; then cp BENCH_scale.json BENCH_scale.prev.json; fi
	$(GO) run ./cmd/mobilexp -scale -scale-reps 3 -bench-json BENCH_scale.json
	$(GO) run ./cmd/mobilexp -check-bench BENCH_scale.json

# Compare the current scale snapshot against the previous one (written by
# the last bench-scale): per-row msgs/sec ratios and the sharded-vs-single
# kernel ratio trajectory.
bench-delta:
	$(GO) run ./cmd/mobilexp -check-bench BENCH_scale.json -delta BENCH_scale.prev.json

# Regenerate the experiment-suite timing baseline.
bench-snapshot:
	$(GO) run ./cmd/mobilexp -bench-json BENCH_mobilexp.json -o /dev/null
	$(GO) run ./cmd/mobilexp -check-bench BENCH_mobilexp.json

# Validate the checked-in snapshots against the mobiledist-bench schema.
bench-check:
	$(GO) run ./cmd/mobilexp -check-bench BENCH_mobilexp.json
	$(GO) run ./cmd/mobilexp -check-bench BENCH_scale.json

# Short fuzz pass over the kernel heap oracle and scheduler invariants.
fuzz:
	$(GO) test -run xxx -fuzz FuzzKernelHeapOracle -fuzztime 30s ./internal/sim
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 30s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzPayloadDecoders -fuzztime 30s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzPacketHeader -fuzztime 30s ./internal/dgram
	$(GO) test -run xxx -fuzz FuzzConnectToken -fuzztime 30s ./internal/dgram
	$(GO) test -run xxx -fuzz FuzzSummaryVector -fuzztime 30s ./internal/dtn

# The same fuzz targets with a budget small enough for the ci gate: the
# wire decoders and the datagram packet/token parsers read bytes straight
# off sockets, so even a few seconds of coverage-guided input on every
# change is worth the wall clock.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 5s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzPayloadDecoders -fuzztime 5s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzPacketHeader -fuzztime 5s ./internal/dgram
	$(GO) test -run xxx -fuzz FuzzConnectToken -fuzztime 5s ./internal/dgram
	$(GO) test -run xxx -fuzz FuzzSummaryVector -fuzztime 5s ./internal/dtn

# Chaos conformance: the substrate-parity invariants re-run under seeded
# fault plans (wireless loss, link flaps, MSS crash/restart) on the
# simulator, the live runtime, and the TCP network runtime, race detector
# on. See DESIGN.md §8 and §10.
chaos:
	$(GO) test -race -run 'TestChaos' -count 1 ./internal/conformance/
	$(GO) test -race -run 'Test' -count 1 ./internal/faults/
	$(GO) test -race -run 'Test' -count 1 ./internal/netrt/ ./internal/wire/

# Crash-recovery conformance: real relay-node kills and generation-fenced
# restarts under the seeded socket nemesis (latency, stalls, resets), plus
# the nemesis package's own determinism suite — race detector on. See
# DESIGN.md §11.
chaos-net:
	$(GO) test -race -run 'TestCrash' -count 1 -timeout 300s ./internal/conformance/
	$(GO) test -race -count 1 ./internal/nemesis/

# Datagram-substrate conformance: the UDP transport (authenticated dgram
# sessions) driven through the seeded datagram nemesis — drops, duplicates,
# reorders, jitter on every link — plus the dgram package's own protocol
# suite, race detector on. See DESIGN.md §12.
chaos-udp:
	$(GO) test -race -run 'TestUDP' -count 1 -timeout 300s ./internal/conformance/ ./internal/nemesis/
	$(GO) test -race -count 1 ./internal/dgram/

# Store-carry-forward conformance: the custody subsystem's chaos and
# cross-substrate tests — delivery ratio strictly above the park-at-MSS
# baseline under custodian-crash plans, exactly-once + FIFO drain under
# wireless loss on all four substrates, token recovery still regenerating
# exactly once with DTN attached — plus the dtn package's own suite, race
# detector on. See DESIGN.md §13.
chaos-dtn:
	$(GO) test -race -run 'TestChaosDTN|TestConformanceDTN' -count 1 ./internal/conformance/
	$(GO) test -race -count 1 ./internal/dtn/

# Extended loopback soak: churn + CS traffic + fault injection + one relay
# crash/restart cycle over real sockets for 15s under the race detector
# (the same test runs for ~2s in the regular suite; see DESIGN.md §10). Not
# part of `make ci` so CI stays bounded. TRANSPORT=udp soaks the datagram
# sessions instead of TCP streams.
TRANSPORT ?= tcp
soak:
	$(GO) test -race -run 'TestLoopbackSoak' -count 1 ./internal/netrt/ -soak 15s -transport $(TRANSPORT)

# Regenerate the experiment tables (parallel driver, deterministic output).
tables:
	$(GO) run ./cmd/mobilexp -markdown
