// Package mobiledist is a Go reproduction of "Structuring Distributed
// Algorithms for Mobile Hosts" (Badrinath, Acharya, Imielinski — ICDCS
// 1994).
//
// The library provides:
//
//   - the paper's two-tier operational system model: M mobile support
//     stations (MSSs) on a wired network, N mobile hosts (MHs) attaching to
//     one cell at a time, with the Cfixed / Cwireless / Csearch cost model,
//     FIFO channels, and the leave/join/disconnect/reconnect protocol
//     (Section 2);
//   - the restructured mutual-exclusion algorithms: Lamport's algorithm on
//     MHs (L1) and on MSSs (L2), and the token ring on MHs (R1) and MSSs
//     (R2, R2′, R2″) (Section 3);
//   - group location management: pure search, always inform, and the
//     proposed location view LV(G) (Section 4);
//   - the proxy framework decoupling mobility from algorithm design, with
//     home and local proxy scopes and an adapter lifting any static
//     message-passing algorithm to mobile participants (Section 5);
//   - deterministic simulation with exact message-cost accounting, seeded
//     workload generators, and an experiment suite regenerating every
//     comparison in the paper (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	sys := mobiledist.MustNewSystem(mobiledist.DefaultConfig(4, 16))
//	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: 10})
//	_ = l2.Request(mobiledist.MHID(3))
//	_ = sys.Run()
//	fmt.Print(sys.Meter().Report(sys.Config().Params))
//
// The facade re-exports the library's packages under one import; the
// examples/ directory holds runnable scenarios and cmd/mobilexp
// regenerates the paper's evaluation tables.
package mobiledist

import (
	"mobiledist/internal/core"
	"mobiledist/internal/cost"
	"mobiledist/internal/sim"
)

// Identifier and model types (Section 2).
type (
	// MSSID identifies a mobile support station (fixed host).
	MSSID = core.MSSID
	// MHID identifies a mobile host.
	MHID = core.MHID
	// MHStatus is a mobile host's connectivity state.
	MHStatus = core.MHStatus
	// Message is an algorithm-defined payload.
	Message = core.Message
	// From identifies a message's immediate sender.
	From = core.From
	// Config describes a two-tier network instance.
	Config = core.Config
	// Delay is an inclusive latency range.
	Delay = core.Delay
	// System is the deterministic simulation driver.
	System = core.System
	// Context is the capability surface algorithms program against.
	Context = core.Context
	// Registrar hosts algorithms (implemented by System).
	Registrar = core.Registrar
	// Algorithm is a hosted distributed algorithm.
	Algorithm = core.Algorithm
	// Stats are model-level counters.
	Stats = core.Stats
	// SearchMode selects the search service.
	SearchMode = core.SearchMode
	// FailReason explains a delivery failure.
	FailReason = core.FailReason
	// Time is virtual simulation time.
	Time = sim.Time
)

// Connectivity states.
const (
	StatusConnected    = core.StatusConnected
	StatusInTransit    = core.StatusInTransit
	StatusDisconnected = core.StatusDisconnected
)

// Search modes.
const (
	SearchAbstract  = core.SearchAbstract
	SearchBroadcast = core.SearchBroadcast
)

// Fault-injection vocabulary (chaos testing; see internal/faults).
type (
	// FaultPlan is a declarative, seeded fault schedule: wireless loss
	// rates, link flaps, and MSS crash/restart windows. Attach one via
	// Config.Faults or process-wide via SetDefaultFaultPlan.
	FaultPlan = core.FaultPlan
	// LinkFaults are per-transmission wireless fault probabilities.
	LinkFaults = core.LinkFaults
	// Flap is a timed wireless outage of one cell.
	Flap = core.Flap
	// Crash is a timed MSS failure (with optional restart).
	Crash = core.Crash
)

// SetDefaultFaultPlan makes every DefaultConfig-built system run under the
// given fault plan (nil restores fault-free defaults). Set it during
// process setup, before building systems.
func SetDefaultFaultPlan(p *FaultPlan) { core.SetDefaultFaultPlan(p) }

// DefaultFaultPlan returns the plan DefaultConfig currently attaches.
func DefaultFaultPlan() *FaultPlan { return core.DefaultFaultPlan() }

// Cost model types (Section 2).
type (
	// CostParams holds Cfixed, Cwireless and Csearch.
	CostParams = cost.Params
	// Meter accumulates message counts and energy.
	Meter = cost.Meter
	// CostKind is a channel kind.
	CostKind = cost.Kind
	// CostCategory is an accounting category.
	CostCategory = cost.Category
)

// Channel kinds and accounting categories.
const (
	KindFixed    = cost.KindFixed
	KindWireless = cost.KindWireless
	KindSearch   = cost.KindSearch

	CatAlgorithm = cost.CatAlgorithm
	CatControl   = cost.CatControl
	CatLocation  = cost.CatLocation
	CatStale     = cost.CatStale
)

// NewSystem builds a two-tier network from cfg.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// MustNewSystem is NewSystem panicking on configuration errors.
func MustNewSystem(cfg Config) *System { return core.MustNewSystem(cfg) }

// DefaultConfig returns a paper-faithful configuration for m stations and n
// mobile hosts.
func DefaultConfig(m, n int) Config { return core.DefaultConfig(m, n) }

// DefaultCostParams returns the cost constants used by the experiment
// suite.
func DefaultCostParams() CostParams { return cost.DefaultParams() }

// FixedDelay returns a degenerate latency range.
func FixedDelay(d Time) Delay { return core.FixedDelay(d) }
