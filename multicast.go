package mobiledist

import "mobiledist/internal/multicast"

// Exactly-once multicast (the paper's reference [1], built on the
// Section-2 handoff machinery).
type (
	// Multicast is an exactly-once, totally-ordered multicast group over
	// mobile members.
	Multicast = multicast.Multicast
	// MulticastOptions configure a multicast group.
	MulticastOptions = multicast.Options
)

// NewMulticast registers an exactly-once multicast group over members.
func NewMulticast(reg Registrar, members []MHID, opts MulticastOptions) (*Multicast, error) {
	return multicast.New(reg, members, opts)
}
