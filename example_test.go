package mobiledist_test

import (
	"fmt"

	"mobiledist"
)

// ExampleNewL2 runs one mutual-exclusion execution the paper's way: the
// support stations arbitrate on the mobile host's behalf, and the measured
// message cost equals the closed form 3Cw + Cf + Cs + 3(M−1)Cf.
func ExampleNewL2() {
	cfg := mobiledist.DefaultConfig(4, 8)
	sys := mobiledist.MustNewSystem(cfg)

	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold: 10,
		OnEnter: func(mh mobiledist.MHID) {
			fmt.Printf("mh%d holds the resource\n", int(mh))
		},
	})
	if err := l2.Request(mobiledist.MHID(5)); err != nil {
		fmt.Println("request:", err)
		return
	}
	if err := sys.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	p := cfg.Params
	fmt.Printf("cost: %.0f (paper: %.0f)\n",
		sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p),
		3*p.Wireless+p.Fixed+p.Search+3*float64(cfg.M-1)*p.Fixed)
	// Output:
	// mh5 holds the resource
	// cost: 45 (paper: 45)
}

// ExampleNewR2 circulates the token ring over the stations: requesters are
// served on the token's next visit and the traversal cost follows
// K(3Cw+Cf+Cs) + M·Cf.
func ExampleNewR2() {
	sys := mobiledist.MustNewSystem(mobiledist.DefaultConfig(5, 10))

	r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{
		Hold: 5,
		OnEnter: func(mh mobiledist.MHID) {
			fmt.Printf("mh%d takes the token\n", int(mh))
		},
	}, 1 /* traversal */, nil)
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	for _, mh := range []mobiledist.MHID{2, 7} {
		if err := r2.Request(mh); err != nil {
			fmt.Println("request:", err)
			return
		}
	}
	sys.Schedule(100, func() {
		if err := r2.Start(); err != nil {
			fmt.Println("start:", err)
		}
	})
	if err := sys.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("%d grants in %d traversal\n", r2.Grants(), r2.Traversals())
	// Output:
	// mh2 takes the token
	// mh7 takes the token
	// 2 grants in 1 traversal
}

// ExampleNewLocationView sends a group message through the paper's LV(G)
// strategy: one wireless uplink, |LV|−1 fixed hops, one downlink per
// recipient.
func ExampleNewLocationView() {
	cfg := mobiledist.DefaultConfig(6, 12)
	// Concentrate the 6 members in two cells: |LV| = 2.
	cfg.Placement = func(mh mobiledist.MHID) mobiledist.MSSID {
		if int(mh) < 6 {
			return mobiledist.MSSID(int(mh) % 2)
		}
		return mobiledist.MSSID(int(mh) % 6)
	}
	sys := mobiledist.MustNewSystem(cfg)

	lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(6), mobiledist.LocationViewOptions{
		Coordinator: mobiledist.MSSID(5),
	})
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	if err := lv.Send(mobiledist.MHID(0), "assemble"); err != nil {
		fmt.Println("send:", err)
		return
	}
	if err := sys.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("|LV| = %d, delivered to %d members, cost %.0f\n",
		lv.ViewSize(), lv.Delivered(),
		sys.Meter().CategoryCost(mobiledist.CatAlgorithm, cfg.Params))
	// Output:
	// |LV| = 2, delivered to 5 members, cost 61
}

// ExampleNewMulticast shows the exactly-once feed surviving a move: the
// delivery watermark is handed between stations with the member.
func ExampleNewMulticast() {
	sys := mobiledist.MustNewSystem(mobiledist.DefaultConfig(4, 6))

	mc, err := mobiledist.NewMulticast(sys, mobiledist.AllMHs(3), mobiledist.MulticastOptions{
		Sequencer: mobiledist.MSSID(0),
		OnDeliver: func(at mobiledist.MHID, seq int64, payload any) {
			fmt.Printf("mh%d got #%d %v\n", int(at), seq, payload)
		},
	})
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	if err := mc.Publish(mobiledist.MHID(0), "first"); err != nil {
		fmt.Println("publish:", err)
		return
	}
	sys.Schedule(1_000, func() {
		_ = sys.Move(mobiledist.MHID(1), mobiledist.MSSID(3))
	})
	sys.Schedule(2_000, func() {
		_ = mc.Publish(mobiledist.MHID(2), "second")
	})
	if err := sys.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("handoffs: %d\n", mc.Handoffs())
	// Unordered output:
	// mh0 got #0 first
	// mh1 got #0 first
	// mh2 got #0 first
	// mh0 got #1 second
	// mh1 got #1 second
	// mh2 got #1 second
	// handoffs: 1
}

// ExampleNewProxyRuntime lifts a mobility-oblivious Lamport mutex onto
// mobile hosts: with home scope the algorithm text never learns about
// mobility.
func ExampleNewProxyRuntime() {
	sys := mobiledist.MustNewSystem(mobiledist.DefaultConfig(3, 4))

	sm, err := mobiledist.NewStaticMutex(4, mobiledist.StaticMutexOptions{
		Hold:    5,
		OnEnter: func(p int) { fmt.Printf("process %d in critical section\n", p) },
	})
	if err != nil {
		fmt.Println("new mutex:", err)
		return
	}
	rt, err := mobiledist.NewProxyRuntime(sys, sm, mobiledist.AllMHs(4), mobiledist.ProxyOptions{
		Scope: mobiledist.ScopeHome,
	})
	if err != nil {
		fmt.Println("new runtime:", err)
		return
	}
	if err := rt.Input(mobiledist.MHID(3), mobiledist.ProxyRequestInput()); err != nil {
		fmt.Println("input:", err)
		return
	}
	if err := sys.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("grants: %d\n", sm.Grants())
	// Output:
	// process 3 in critical section
	// grants: 1
}
