package mobiledist_test

import (
	"testing"

	"mobiledist"
)

// TestGrandScenario co-hosts every system of the library on one two-tier
// network under a mixed workload — mutual exclusion requests, group
// messages, a multicast feed, mobility, and churn — and checks the global
// invariants after the network drains. This is the closest thing to the
// "operational" system the paper sketches: many algorithms sharing the same
// static tier and the same roaming hosts.
func TestGrandScenario(t *testing.T) {
	const (
		m = 8
		n = 40
		g = 10 // members of the group and multicast feed
	)
	cfg := mobiledist.DefaultConfig(m, n)
	cfg.Seed = 2026
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	// Mutual exclusion over all hosts (L2).
	holders, peak := 0, 0
	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold: 8,
		OnEnter: func(mobiledist.MHID) {
			holders++
			if holders > peak {
				peak = holders
			}
		},
		OnExit: func(mobiledist.MHID) { holders-- },
	})

	// A token ring (R2') over the same stations, for a different resource.
	ringHolders, ringPeak := 0, 0
	r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{
		Hold: 6,
		OnEnter: func(mobiledist.MHID) {
			ringHolders++
			if ringHolders > ringPeak {
				ringPeak = ringHolders
			}
		},
		OnExit: func(mobiledist.MHID) { ringHolders-- },
	}, 5, nil)
	if err != nil {
		t.Fatalf("NewR2: %v", err)
	}

	// A location-view group over the first g hosts.
	groupDeliveries := 0
	lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(g), mobiledist.LocationViewOptions{
		Options: mobiledist.GroupOptions{
			OnDeliver: func(mobiledist.MHID, mobiledist.MHID, any) { groupDeliveries++ },
		},
		Coordinator:   mobiledist.MSSID(m - 1),
		CombineWindow: 150,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}

	// An exactly-once feed over the same members.
	feed := make(map[mobiledist.MHID][]int64)
	mc, err := mobiledist.NewMulticast(sys, mobiledist.AllMHs(g), mobiledist.MulticastOptions{
		Sequencer: mobiledist.MSSID(0),
		OnDeliver: func(at mobiledist.MHID, seq int64, _ any) {
			feed[at] = append(feed[at], seq)
		},
	})
	if err != nil {
		t.Fatalf("NewMulticast: %v", err)
	}

	// Workloads: everyone requests the mutex once, half request the ring
	// token, the group chats, the feed publishes, everyone roams, and two
	// hosts churn.
	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		Interval:      mobiledist.Span{Min: 50, Max: 900},
		RequestsPerMH: 1,
	}, l2.Request); err != nil {
		t.Fatalf("NewRequests(l2): %v", err)
	}
	ringRequesters := mobiledist.AllMHs(n)[:n/2]
	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		MHs:           ringRequesters,
		Interval:      mobiledist.Span{Min: 100, Max: 1_200},
		RequestsPerMH: 1,
	}, r2.Request); err != nil {
		t.Fatalf("NewRequests(r2): %v", err)
	}
	const groupMsgs = 6
	if _, err := mobiledist.NewTraffic(sys, mobiledist.TrafficConfig{
		Senders:  mobiledist.AllMHs(g),
		Interval: mobiledist.Span{Min: 800, Max: 2_000},
		Messages: groupMsgs,
		Start:    500,
	}, func(mh mobiledist.MHID, payload any) error { return lv.Send(mh, payload) }); err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	const feedItems = 5
	for i := 0; i < feedItems; i++ {
		sys.Schedule(mobiledist.Time(700+i*1_100), func() {
			_ = mc.Publish(mobiledist.MHID(1), i)
		})
	}
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		Interval:   mobiledist.Span{Min: 300, Max: 2_500},
		MovesPerMH: 2,
		Locality:   0.6,
	}); err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if _, err := mobiledist.NewChurn(sys, mobiledist.ChurnConfig{
		MHs:       []mobiledist.MHID{n - 1, n - 2}, // outside group/feed
		UpFor:     mobiledist.Span{Min: 500, Max: 2_000},
		DownFor:   mobiledist.Span{Min: 300, Max: 1_000},
		Cycles:    2,
		KnowsPrev: true,
	}); err != nil {
		t.Fatalf("NewChurn: %v", err)
	}
	sys.Schedule(1_000, func() {
		if err := r2.Start(); err != nil {
			t.Errorf("r2.Start: %v", err)
		}
	})

	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Invariants.
	if peak > 1 {
		t.Errorf("L2 mutual exclusion violated: peak holders %d", peak)
	}
	if ringPeak > 1 {
		t.Errorf("R2' token duplicated: peak holders %d", ringPeak)
	}
	if holders != 0 || ringHolders != 0 {
		t.Errorf("dangling holders after drain: l2=%d r2=%d", holders, ringHolders)
	}
	if got := l2.Grants() + l2.FailedGrants(); got != n {
		t.Errorf("L2 grants+aborts = %d, want %d", got, n)
	}
	if got := r2.Grants(); got != int64(len(ringRequesters)) {
		t.Errorf("R2' grants = %d, want %d", got, len(ringRequesters))
	}
	for i := 0; i < g; i++ {
		seqs := feed[mobiledist.MHID(i)]
		if int64(len(seqs)) != mc.Published() {
			t.Errorf("feed member mh%d received %d items, want %d", i, len(seqs), mc.Published())
			continue
		}
		for j, s := range seqs {
			if s != int64(j) {
				t.Errorf("feed member mh%d out of order: %v", i, seqs)
				break
			}
		}
	}
	// The group view must be exact after drain.
	wantView := make(map[mobiledist.MSSID]bool)
	for i := 0; i < g; i++ {
		at, st := sys.Where(mobiledist.MHID(i))
		if st != mobiledist.StatusConnected {
			t.Fatalf("group member mh%d ended %v", i, st)
		}
		wantView[at] = true
	}
	view := lv.View()
	if len(view) != len(wantView) {
		t.Errorf("LV = %v, want cells %v", view, wantView)
	}
	for _, id := range view {
		if !wantView[id] {
			t.Errorf("LV contains ghost cell mss%d", int(id))
		}
	}
	if groupDeliveries == 0 {
		t.Error("no group deliveries recorded")
	}

	// Cost sanity: wireless energy is conserved (rx never exceeds charges).
	p := cfg.Params
	total := sys.Meter().TotalCost(p)
	if total <= 0 {
		t.Error("no cost recorded")
	}
	tx, rx := sys.Meter().TotalEnergy()
	wireless := sys.Meter().KindTotal(mobiledist.KindWireless)
	if tx+rx > 2*wireless {
		t.Errorf("energy bookkeeping broken: tx=%d rx=%d wireless msgs=%d", tx, rx, wireless)
	}
	t.Logf("scenario: cost=%.0f, searches=%d, moves=%d, stale=%d, L2 grants=%d, ring grants=%d, group deliveries=%d, feed handoffs=%d",
		total, sys.Stats().Searches, sys.Stats().Moves, sys.Stats().StaleReroutes,
		l2.Grants(), r2.Grants(), groupDeliveries, mc.Handoffs())
}

// TestGrandScenarioDeterministic: the entire mixed scenario is a pure
// function of the seed.
func TestGrandScenarioDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := mobiledist.DefaultConfig(5, 15)
		cfg.Seed = 424242
		sys := mobiledist.MustNewSystem(cfg)
		l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: 5})
		lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(6), mobiledist.LocationViewOptions{
			Coordinator:   mobiledist.MSSID(4),
			CombineWindow: 100,
		})
		if err != nil {
			t.Fatalf("NewLocationView: %v", err)
		}
		if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
			Interval:      mobiledist.Span{Min: 30, Max: 400},
			RequestsPerMH: 1,
		}, l2.Request); err != nil {
			t.Fatalf("NewRequests: %v", err)
		}
		if _, err := mobiledist.NewTraffic(sys, mobiledist.TrafficConfig{
			Senders:  mobiledist.AllMHs(6),
			Interval: mobiledist.Span{Min: 200, Max: 700},
			Messages: 4,
		}, func(mh mobiledist.MHID, payload any) error { return lv.Send(mh, payload) }); err != nil {
			t.Fatalf("NewTraffic: %v", err)
		}
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 100, Max: 900},
			MovesPerMH: 3,
		}); err != nil {
			t.Fatalf("NewMobility: %v", err)
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sys.Meter().TotalCost(cfg.Params)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("scenario not deterministic: %v vs %v", a, b)
	}
}
