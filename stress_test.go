package mobiledist_test

import (
	"testing"

	"mobiledist"
)

// TestScaleLargePopulation exercises the paper's N >> M regime at a size two
// orders of magnitude above the unit tests: 500 mobile hosts over 20
// stations, all requesting the critical section while a quarter of them
// roam. Verifies liveness, safety and the N-independence of L2's per
// execution cost at scale.
func TestScaleLargePopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("large-population scale test")
	}
	const (
		m = 20
		n = 500
	)
	cfg := mobiledist.DefaultConfig(m, n)
	cfg.Seed = 31
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	holders, peak := 0, 0
	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold: 3,
		OnEnter: func(mobiledist.MHID) {
			holders++
			if holders > peak {
				peak = holders
			}
		},
		OnExit: func(mobiledist.MHID) { holders-- },
	})
	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		Interval:      mobiledist.Span{Min: 10, Max: 5_000},
		RequestsPerMH: 1,
	}, l2.Request); err != nil {
		t.Fatalf("NewRequests: %v", err)
	}
	movers := mobiledist.AllMHs(n)[:n/4]
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		MHs:        movers,
		Interval:   mobiledist.Span{Min: 500, Max: 8_000},
		MovesPerMH: 2,
		Locality:   0.5,
	}); err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if peak > 1 {
		t.Errorf("mutual exclusion violated at scale: peak %d", peak)
	}
	if got := l2.Grants(); got != n {
		t.Errorf("grants = %d, want %d", got, n)
	}
	// The paper's N-independence: per-execution algorithm cost equals the
	// closed form even at N=500 with mobility (grant searches are charged
	// pessimistically, so mobility does not change the count).
	p := cfg.Params
	perExec := sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p) / float64(n)
	want := 3*p.Wireless + p.Fixed + p.Search + 3*float64(m-1)*p.Fixed
	if perExec != want {
		t.Errorf("per-execution cost at scale = %v, want %v", perExec, want)
	}
}

// TestScaleLargeGroupLocationView runs a 100-member location-view group over
// 32 cells with heavy mobility and verifies view exactness and message
// delivery at scale.
func TestScaleLargeGroupLocationView(t *testing.T) {
	if testing.Short() {
		t.Skip("large-group scale test")
	}
	const (
		m = 32
		n = 150
		g = 100
	)
	cfg := mobiledist.DefaultConfig(m, n)
	cfg.Seed = 37
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(g), mobiledist.LocationViewOptions{
		Coordinator:   mobiledist.MSSID(m - 1),
		CombineWindow: 150,
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		MHs:        mobiledist.AllMHs(g),
		Interval:   mobiledist.Span{Min: 200, Max: 4_000},
		MovesPerMH: 3,
		Locality:   0.3,
	}); err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Exactness at scale.
	want := make(map[mobiledist.MSSID]bool)
	for i := 0; i < g; i++ {
		at, st := sys.Where(mobiledist.MHID(i))
		if st != mobiledist.StatusConnected {
			t.Fatalf("mh%d ended %v", i, st)
		}
		want[at] = true
	}
	view := lv.View()
	if len(view) != len(want) {
		t.Fatalf("|LV| = %d, want %d", len(view), len(want))
	}
	for _, id := range view {
		if !want[id] {
			t.Fatalf("ghost cell mss%d in view", int(id))
		}
	}

	// One message reaches all 99 other members.
	if err := lv.Send(mobiledist.MHID(50), "scale"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := lv.Delivered(); got != g-1 {
		t.Errorf("delivered = %d, want %d", got, g-1)
	}
}

// TestScaleL1StillLinear runs L1 at N=200 as the expensive baseline and
// checks its cost is exactly the paper's linear form — the measurement that
// motivates the whole paper.
func TestScaleL1StillLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("L1 baseline scale test")
	}
	const (
		m = 10
		n = 200
	)
	cfg := mobiledist.DefaultConfig(m, n)
	cfg.Seed = 41
	sys := mobiledist.MustNewSystem(cfg)
	l1, err := mobiledist.NewL1(sys, mobiledist.AllMHs(n), mobiledist.MutexOptions{Hold: 3})
	if err != nil {
		t.Fatalf("NewL1: %v", err)
	}
	if err := l1.Request(mobiledist.MHID(0)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p := cfg.Params
	got := sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p)
	want := 3 * float64(n-1) * (2*p.Wireless + p.Search)
	if got != want {
		t.Errorf("L1 cost at N=200 = %v, want %v", got, want)
	}
}
