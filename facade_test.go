package mobiledist_test

import (
	"testing"
	"testing/quick"
	"time"

	"mobiledist"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := mobiledist.DefaultConfig(4, 16)
	cfg.Seed = 3
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	var entries int
	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold:    10,
		OnEnter: func(mobiledist.MHID) { entries++ },
	})
	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		Interval:      mobiledist.Span{Min: 10, Max: 100},
		RequestsPerMH: 1,
	}, l2.Request); err != nil {
		t.Fatalf("NewRequests: %v", err)
	}
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		Interval:   mobiledist.Span{Min: 100, Max: 500},
		MovesPerMH: 2,
	}); err != nil {
		t.Fatalf("NewMobility: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if entries != 16 {
		t.Errorf("entries = %d, want 16", entries)
	}
	if got := sys.Meter().TotalCost(cfg.Params); got <= 0 {
		t.Errorf("total cost = %v, want > 0", got)
	}
}

func TestMultipleAlgorithmsCoexist(t *testing.T) {
	// A mutex and a group can share one network: message dispatch is
	// per-algorithm.
	cfg := mobiledist.DefaultConfig(4, 12)
	sys := mobiledist.MustNewSystem(cfg)

	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: 5})
	lv, err := mobiledist.NewLocationView(sys, mobiledist.AllMHs(6), mobiledist.LocationViewOptions{
		Coordinator: mobiledist.MSSID(3),
	})
	if err != nil {
		t.Fatalf("NewLocationView: %v", err)
	}
	if err := l2.Request(mobiledist.MHID(7)); err != nil {
		t.Fatalf("Request: %v", err)
	}
	if err := lv.Send(mobiledist.MHID(0), "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l2.Grants() != 1 {
		t.Errorf("grants = %d, want 1", l2.Grants())
	}
	if lv.Delivered() != 5 {
		t.Errorf("delivered = %d, want 5", lv.Delivered())
	}
}

// TestPropertyMutualExclusionUnderChaos: for arbitrary seeds and mixed
// workloads of requests, moves and disconnect/reconnect churn, L2 never
// admits two holders and every grant is balanced by a release or abort.
func TestPropertyMutualExclusionUnderChaos(t *testing.T) {
	check := func(seed uint64, mobility, churnRaw uint8) bool {
		const (
			m = 5
			n = 12
		)
		cfg := mobiledist.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := mobiledist.NewSystem(cfg)
		if err != nil {
			return false
		}
		holders, peak := 0, 0
		l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
			Hold: 7,
			OnEnter: func(mobiledist.MHID) {
				holders++
				if holders > peak {
					peak = holders
				}
			},
			OnExit: func(mobiledist.MHID) { holders-- },
		})
		if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
			Interval:      mobiledist.Span{Min: 20, Max: 200},
			RequestsPerMH: 2,
		}, l2.Request); err != nil {
			return false
		}
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 50, Max: 400},
			MovesPerMH: int(mobility % 4),
			Locality:   0.5,
		}); err != nil {
			return false
		}
		if churnRaw%2 == 1 {
			if _, err := mobiledist.NewChurn(sys, mobiledist.ChurnConfig{
				MHs:       []mobiledist.MHID{10, 11},
				UpFor:     mobiledist.Span{Min: 100, Max: 500},
				DownFor:   mobiledist.Span{Min: 100, Max: 300},
				Cycles:    2,
				KnowsPrev: true,
			}); err != nil {
				return false
			}
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return peak <= 1 && holders == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTokenUniqueness: under the same chaos, the R2' token admits
// at most one holder at a time and the token is never duplicated (grants
// equal returns plus at most one in flight at drain).
func TestPropertyTokenUniqueness(t *testing.T) {
	check := func(seed uint64, mobility uint8) bool {
		const (
			m = 4
			n = 10
		)
		cfg := mobiledist.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := mobiledist.NewSystem(cfg)
		if err != nil {
			return false
		}
		holders, peak := 0, 0
		r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{
			Hold: 5,
			OnEnter: func(mobiledist.MHID) {
				holders++
				if holders > peak {
					peak = holders
				}
			},
			OnExit: func(mobiledist.MHID) { holders-- },
		}, 4, nil)
		if err != nil {
			return false
		}
		if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
			Interval:      mobiledist.Span{Min: 20, Max: 150},
			RequestsPerMH: 1,
		}, r2.Request); err != nil {
			return false
		}
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 60, Max: 300},
			MovesPerMH: int(mobility % 3),
		}); err != nil {
			return false
		}
		sys.Schedule(300, func() {
			_ = r2.Start()
		})
		if err := sys.Run(); err != nil {
			return false
		}
		return peak <= 1 && holders == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupDeliveryCount: in a quiescent network every strategy
// delivers each group message to exactly |G|-1 members.
func TestPropertyGroupDeliveryCount(t *testing.T) {
	check := func(seed uint64, gRaw, strat uint8) bool {
		const (
			m = 5
			n = 12
		)
		g := int(gRaw%8) + 2
		cfg := mobiledist.DefaultConfig(m, n)
		cfg.Seed = seed
		sys, err := mobiledist.NewSystem(cfg)
		if err != nil {
			return false
		}
		members := mobiledist.AllMHs(g)
		var comm mobiledist.GroupComm
		switch strat % 3 {
		case 0:
			comm, err = mobiledist.NewPureSearch(sys, members, mobiledist.GroupOptions{})
		case 1:
			comm, err = mobiledist.NewAlwaysInform(sys, members, mobiledist.GroupOptions{})
		case 2:
			comm, err = mobiledist.NewLocationView(sys, members, mobiledist.LocationViewOptions{
				Coordinator: mobiledist.MSSID(m - 1),
			})
		}
		if err != nil {
			return false
		}
		const msgs = 3
		for i := 0; i < msgs; i++ {
			from := members[i%g]
			sys.Schedule(mobiledist.Time(i*10_000), func() {
				_ = comm.Send(from, i)
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return comm.Delivered() == int64(msgs*(g-1))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := mobiledist.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("experiment ids = %v", ids)
	}
	tab, ok := mobiledist.ExperimentByID("E10", 1)
	if !ok || tab.ID != "E10" {
		t.Errorf("ExperimentByID(E10) = %v, %v", tab.ID, ok)
	}
	if _, ok := mobiledist.ExperimentByID("bogus", 1); ok {
		t.Error("bogus experiment id accepted")
	}
}

func TestLiveFacade(t *testing.T) {
	sys, err := mobiledist.NewLiveSystem(mobiledist.DefaultLiveConfig(3, 6))
	if err != nil {
		t.Fatalf("NewLiveSystem: %v", err)
	}
	var grants int
	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold:    2,
		OnEnter: func(mobiledist.MHID) { grants++ },
	})
	sys.Start()
	defer sys.Stop()
	sys.Do(func() {
		if err := l2.Request(mobiledist.MHID(4)); err != nil {
			t.Errorf("Request: %v", err)
		}
	})
	if !sys.WaitIdle(10 * time.Second) {
		t.Fatal("network did not drain")
	}
	sys.Do(func() {
		if grants != 1 {
			t.Errorf("grants = %d, want 1", grants)
		}
	})
}
