package mobiledist

import (
	"mobiledist/internal/experiments"
	"mobiledist/internal/workload"
)

// Workload generators (deterministic, seeded from the system RNG).
type (
	// Span is an inclusive range of virtual-time intervals.
	Span = workload.Span
	// MobilityConfig parameterises a mobility process.
	MobilityConfig = workload.MobilityConfig
	// Mobility drives random cell switches.
	Mobility = workload.Mobility
	// RequestConfig parameterises a request generator.
	RequestConfig = workload.RequestConfig
	// Requests drives mutual-exclusion requests.
	Requests = workload.Requests
	// ChurnConfig parameterises disconnect/reconnect cycles.
	ChurnConfig = workload.ChurnConfig
	// Churn drives voluntary disconnections.
	Churn = workload.Churn
	// TrafficConfig parameterises group-message traffic.
	TrafficConfig = workload.TrafficConfig
	// Traffic drives group messages.
	Traffic = workload.Traffic
)

// FixedSpan returns a degenerate interval range.
func FixedSpan(d Time) Span { return workload.FixedSpan(d) }

// NewMobility installs a mobility process on sys.
func NewMobility(sys *System, cfg MobilityConfig) (*Mobility, error) {
	return workload.NewMobility(sys, cfg)
}

// NewRequests installs a request generator driving issue.
func NewRequests(sys *System, cfg RequestConfig, issue func(MHID) error) (*Requests, error) {
	return workload.NewRequests(sys, cfg, issue)
}

// NewChurn installs a disconnect/reconnect process on sys.
func NewChurn(sys *System, cfg ChurnConfig) (*Churn, error) {
	return workload.NewChurn(sys, cfg)
}

// NewTraffic installs a group-traffic process driving send.
func NewTraffic(sys *System, cfg TrafficConfig, send func(MHID, any) error) (*Traffic, error) {
	return workload.NewTraffic(sys, cfg, send)
}

// Experiment suite (see DESIGN.md for the index).
type (
	// ExperimentTable is one experiment's rendered result.
	ExperimentTable = experiments.Table
)

// AllExperiments regenerates every table of the paper's evaluation.
func AllExperiments(seed uint64) []ExperimentTable { return experiments.All(seed) }

// AllExperimentsParallel regenerates the full suite on up to workers
// goroutines. The tables are byte-identical to AllExperiments(seed) in the
// same order for any worker count; only wall-clock time changes.
func AllExperimentsParallel(seed uint64, workers int) []ExperimentTable {
	return experiments.AllParallel(seed, workers)
}

// ExperimentByID regenerates one experiment (ids E1–E11, A1–A2).
func ExperimentByID(id string, seed uint64) (ExperimentTable, bool) {
	return experiments.ByID(id, seed)
}

// ExperimentIDs lists the experiment ids in index order.
func ExperimentIDs() []string { return experiments.IDs() }

// VerifyExperiments sweeps every experiment across the given number of
// seeds and reports whether each paper/measured column pair agreed in every
// row (bounds checked as inequalities).
func VerifyExperiments(seeds int) ExperimentTable { return experiments.Verify(seeds) }
