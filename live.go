package mobiledist

import "mobiledist/internal/rt"

// Live runtime: the same algorithms on real goroutines and channels. Every
// FIFO channel of the model is a goroutine-backed pipe with wall-clock
// latency; one executor serializes algorithm state. Use the simulator
// (NewSystem) for reproducible measurements and the live runtime for
// operational demos and race-detector validation.
type (
	// LiveSystem is the goroutine/channel runtime driver. It implements
	// Registrar, so every algorithm constructor in this package accepts it.
	LiveSystem = rt.System
	// LiveConfig describes a live two-tier network.
	LiveConfig = rt.Config
)

// NewLiveSystem builds a live runtime from cfg. Lifecycle: register
// algorithms, Start, interact via Do / Move / Disconnect / Reconnect, then
// WaitIdle and Stop.
func NewLiveSystem(cfg LiveConfig) (*LiveSystem, error) { return rt.NewSystem(cfg) }

// DefaultLiveConfig returns a live configuration for m stations and n
// mobile hosts.
func DefaultLiveConfig(m, n int) LiveConfig { return rt.DefaultConfig(m, n) }
