package mobiledist

import (
	"mobiledist/internal/core"
	"mobiledist/internal/obs"
)

// Observability vocabulary (tracing and metrics; see internal/obs).
type (
	// Tracer records typed observability events into a ring buffer (or an
	// unbounded recorder) and optionally feeds a Metrics registry. Attach
	// one via Config.Obs or process-wide via SetDefaultTracer; a nil
	// tracer disables tracing at zero cost.
	Tracer = obs.Tracer
	// TraceEvent is one recorded observation: virtual time, kind, and
	// three kind-specific operands.
	TraceEvent = obs.Event
	// TraceEventKind classifies a recorded event.
	TraceEventKind = obs.EventKind
	// ExportedTrace is a captured run — topology plus event stream — that
	// round-trips through JSONL and a compact binary codec and can be
	// diffed with cmd/mobiletrace.
	ExportedTrace = obs.Trace
	// TraceMetrics is the counter-and-histogram registry a Tracer feeds.
	TraceMetrics = obs.Metrics
	// TraceMetricsSnapshot is a point-in-time, diffable copy of the
	// registry.
	TraceMetricsSnapshot = obs.MetricsSnapshot
)

// NewTracer returns a tracer keeping the most recent capacity events;
// capacity <= 0 keeps every event (for trace export).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewTraceMetrics returns an empty metrics registry, to be attached with
// Tracer.WithMetrics.
func NewTraceMetrics() *TraceMetrics { return obs.NewMetrics() }

// SetDefaultTracer makes every DefaultConfig-built system record into the
// given tracer (nil restores tracing-off defaults). Set it during process
// setup, before building systems.
func SetDefaultTracer(t *Tracer) { core.SetDefaultTracer(t) }

// DefaultTracer returns the tracer DefaultConfig currently attaches.
func DefaultTracer() *Tracer { return core.DefaultTracer() }
