module mobiledist

go 1.22
