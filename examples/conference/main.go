// Conference: a roaming token with disconnecting laptops.
//
// Attendees' laptops roam between the five access points of a conference
// venue and occasionally disconnect (lids close). They share a single
// microphone token. The example contrasts the paper's two ring structures:
//
//   - R1, the ring formed by the laptops themselves: every hop pays
//     2·Cwireless + Csearch, dozing laptops are woken by a token they never
//     asked for, and the first closed lid stalls the ring.
//   - R2′, the ring formed by the access points (MSSs): the token
//     circulates cheaply on the wired side, touches only laptops that asked
//     for it, and skips requesters that disconnected.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"os"

	"mobiledist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conference:", err)
		os.Exit(1)
	}
}

const (
	numAP      = 5
	numLaptops = 15
	traversals = 3
)

func run() error {
	fmt.Println("=== R1: token ring over the laptops ===")
	if err := runR1(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== R2': token ring over the access points ===")
	return runR2()
}

func setup(seed uint64) (*mobiledist.System, error) {
	cfg := mobiledist.DefaultConfig(numAP, numLaptops)
	cfg.Seed = seed
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	// Half the laptops doze; two close their lids early on.
	for i := 0; i < numLaptops; i += 2 {
		sys.SetDoze(mobiledist.MHID(i), true)
	}
	for _, mh := range []mobiledist.MHID{4, 11} {
		mh := mh
		sys.Schedule(200, func() {
			if err := sys.Disconnect(mh); err != nil {
				fmt.Fprintln(os.Stderr, "conference:", err)
			}
		})
	}
	return sys, nil
}

func runR1() error {
	sys, err := setup(21)
	if err != nil {
		return err
	}
	r1, err := mobiledist.NewR1(sys, mobiledist.AllMHs(numLaptops), mobiledist.RingOptions{
		Hold: 40,
		OnEnter: func(mh mobiledist.MHID) {
			fmt.Printf("t=%6d  laptop %d takes the microphone\n", sys.Now(), int(mh))
		},
	}, false /* no ring repair */, traversals)
	if err != nil {
		return err
	}
	for _, mh := range []mobiledist.MHID{1, 3, 7} {
		if err := r1.Request(mh); err != nil {
			return err
		}
	}
	sys.Schedule(500, func() {
		if err := r1.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "conference:", err)
		}
	})
	if err := sys.Run(); err != nil {
		return err
	}
	stats := sys.Stats()
	fmt.Printf("grants=%d traversals=%d stalled=%v dozeInterruptions=%d\n",
		r1.Grants(), r1.Traversals(), r1.Stalled(), stats.DozeInterruptions)
	fmt.Print(sys.Meter().Report(sys.Config().Params))
	if r1.Stalled() {
		fmt.Println("-> the ring stalled at the first closed lid; the paper notes R1 needs the whole ring re-established")
	}
	return nil
}

func runR2() error {
	sys, err := setup(21)
	if err != nil {
		return err
	}
	r2, err := mobiledist.NewR2(sys, mobiledist.R2Counter, mobiledist.RingOptions{
		Hold: 40,
		OnEnter: func(mh mobiledist.MHID) {
			fmt.Printf("t=%6d  laptop %d takes the microphone\n", sys.Now(), int(mh))
		},
	}, traversals, nil)
	if err != nil {
		return err
	}
	// The same three laptops request, plus laptop 4 — which will have
	// disconnected by the time the token reaches its cell, exercising the
	// skip path.
	for _, mh := range []mobiledist.MHID{1, 3, 7, 4} {
		if err := r2.Request(mh); err != nil {
			return err
		}
	}
	// Roaming while the token circulates.
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		MHs:        []mobiledist.MHID{1, 3, 7},
		Interval:   mobiledist.Span{Min: 400, Max: 1_000},
		MovesPerMH: 2,
		Locality:   0.7,
		Start:      300,
	}); err != nil {
		return err
	}
	sys.Schedule(500, func() {
		if err := r2.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "conference:", err)
		}
	})
	if err := sys.Run(); err != nil {
		return err
	}
	stats := sys.Stats()
	fmt.Printf("grants=%d traversals=%d dozeInterruptions=%d failedDeliveries=%d\n",
		r2.Grants(), r2.Traversals(), stats.DozeInterruptions, stats.FailedDeliveries)
	fmt.Print(sys.Meter().Report(sys.Config().Params))
	fmt.Println("-> the token skipped the disconnected requester and never touched a laptop that hadn't asked")
	return nil
}
