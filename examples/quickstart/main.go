// Quickstart: mutual exclusion for mobile hosts the paper's way.
//
// Sixteen mobile hosts spread over four cells compete for a shared
// resource using algorithm L2 — Lamport's mutual exclusion executed by the
// support stations on the hosts' behalf — while some of them wander
// between cells. The run prints every critical-section entry and the final
// message-cost report, showing the constant per-execution cost the paper
// derives (3Cw + Cf + Cs + 3(M−1)Cf) regardless of mobility.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"mobiledist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		numMSS = 4
		numMH  = 16
	)
	cfg := mobiledist.DefaultConfig(numMSS, numMH)
	cfg.Seed = 7
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		return err
	}

	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold: 25,
		OnEnter: func(mh mobiledist.MHID) {
			at, _ := sys.Where(mh)
			fmt.Printf("t=%6d  mh%-2d enters the critical section (cell %d)\n", sys.Now(), int(mh), int(at))
		},
		OnExit: func(mh mobiledist.MHID) {
			fmt.Printf("t=%6d  mh%-2d leaves the critical section\n", sys.Now(), int(mh))
		},
	})

	// Every host requests the resource once.
	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		Interval:      mobiledist.Span{Min: 50, Max: 500},
		RequestsPerMH: 1,
	}, l2.Request); err != nil {
		return err
	}
	// Meanwhile, the hosts roam.
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		Interval:   mobiledist.Span{Min: 300, Max: 1_200},
		MovesPerMH: 2,
		Locality:   0.5,
	}); err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		return err
	}

	fmt.Printf("\n%d grants, %d searches, %d moves completed\n\n",
		l2.Grants(), sys.Stats().Searches, sys.Stats().Moves)
	fmt.Print(sys.Meter().Report(cfg.Params))
	perExec := sys.Meter().CategoryCost(mobiledist.CatAlgorithm, cfg.Params) / float64(l2.Grants())
	fmt.Printf("\ncost per execution: %.1f (paper: 3Cw+Cf+Cs+3(M-1)Cf = %.1f)\n",
		perExec, 3*cfg.Params.Wireless+cfg.Params.Fixed+cfg.Params.Search+3*float64(numMSS-1)*cfg.Params.Fixed)
	return nil
}
