// Live: the paper's protocols on real goroutines and channels.
//
// The other examples run on the deterministic simulator; this one runs the
// same L2 mutual-exclusion implementation on the live runtime, where every
// FIFO channel of the two-tier model is a goroutine-backed pipe with
// wall-clock latencies, and user goroutines drive requests and moves
// concurrently. The message counts still match the paper's formula — the
// cost model depends on what is sent, not when.
//
// Run with: go run ./examples/live   (add -race to see it validated)
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"mobiledist"
)

const (
	numMSS = 4
	numMH  = 10
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := mobiledist.DefaultLiveConfig(numMSS, numMH)
	cfg.Seed = 8
	sys, err := mobiledist.NewLiveSystem(cfg)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	var grants int
	l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{
		Hold: 3,
		OnEnter: func(mh mobiledist.MHID) {
			mu.Lock()
			grants++
			mu.Unlock()
			fmt.Printf("mh%-2d enters the critical section\n", int(mh))
		},
	})

	sys.Start()
	defer sys.Stop()

	// One goroutine issues requests, another drives mobility — genuinely
	// concurrent, unlike the simulator.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < numMH; i++ {
			mh := mobiledist.MHID(i)
			sys.Do(func() {
				if err := l2.Request(mh); err != nil {
					fmt.Fprintln(os.Stderr, "live:", err)
				}
			})
			time.Sleep(300 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < numMH; i++ {
			sys.Move(mobiledist.MHID(i), mobiledist.MSSID((i+2)%numMSS))
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()

	if !sys.WaitIdle(10 * time.Second) {
		return fmt.Errorf("network did not drain")
	}

	p := cfg.Params
	perExec := sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p) / float64(numMH)
	want := 3*p.Wireless + p.Fixed + p.Search + 3*float64(numMSS-1)*p.Fixed
	fmt.Printf("\n%d grants over goroutine transport; %d searches performed\n", grants, sys.Searches())
	fmt.Print(sys.Meter().Report(p))
	fmt.Printf("\ncost per execution: %.1f (paper: %.1f) — same protocol, same counts, real concurrency\n", perExec, want)
	return nil
}
