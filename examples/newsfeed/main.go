// Newsfeed: exactly-once ordered delivery to roaming subscribers.
//
// A news service pushes a numbered feed to subscribers that wander between
// cells, nap (doze), disconnect, and reconnect somewhere else. The
// multicast substrate (the paper's reference [1], built on the Section-2
// handoff) guarantees every subscriber sees every item exactly once, in
// order: a subscriber's delivery watermark lives at its current support
// station and is handed over as it moves; items missed while disconnected
// are delivered as a backlog on reconnection.
//
// Run with: go run ./examples/newsfeed
package main

import (
	"fmt"
	"os"
	"sort"

	"mobiledist"
)

const (
	numCells    = 6
	numHosts    = 10
	subscribers = 6
	items       = 8
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "newsfeed:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := mobiledist.DefaultConfig(numCells, numHosts)
	cfg.Seed = 17
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		return err
	}

	members := mobiledist.AllMHs(subscribers)
	received := make(map[mobiledist.MHID][]int64)
	mc, err := mobiledist.NewMulticast(sys, members, mobiledist.MulticastOptions{
		Sequencer: mobiledist.MSSID(0),
		OnDeliver: func(at mobiledist.MHID, seq int64, payload any) {
			received[at] = append(received[at], seq)
		},
	})
	if err != nil {
		return err
	}

	// Subscriber 0 publishes the feed; everyone (including itself) roams.
	for i := 0; i < items; i++ {
		item := i
		sys.Schedule(mobiledist.Time(500+i*700), func() {
			if err := mc.Publish(mobiledist.MHID(0), fmt.Sprintf("item-%d", item)); err != nil {
				fmt.Fprintln(os.Stderr, "newsfeed:", err)
			}
		})
	}
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		MHs:        members,
		Interval:   mobiledist.Span{Min: 400, Max: 1_500},
		MovesPerMH: 3,
		Locality:   0.5,
	}); err != nil {
		return err
	}
	// Subscriber 4 disconnects mid-feed and reconnects across town.
	sys.Schedule(1_200, func() {
		if err := sys.Disconnect(mobiledist.MHID(4)); err != nil {
			fmt.Fprintln(os.Stderr, "newsfeed:", err)
		}
	})
	sys.Schedule(5_000, func() {
		if err := sys.Reconnect(mobiledist.MHID(4), mobiledist.MSSID(numCells-1), true); err != nil {
			fmt.Fprintln(os.Stderr, "newsfeed:", err)
		}
	})

	if err := sys.Run(); err != nil {
		return err
	}

	fmt.Printf("%d items published, %d deliveries, %d watermark handoffs, %d rollbacks\n\n",
		mc.Published(), mc.Delivered(), mc.Handoffs(), mc.Rollbacks())
	ids := make([]int, 0, len(received))
	for mh := range received {
		ids = append(ids, int(mh))
	}
	sort.Ints(ids)
	allGood := true
	for _, id := range ids {
		seqs := received[mobiledist.MHID(id)]
		ordered := true
		for i, s := range seqs {
			if s != int64(i) {
				ordered = false
			}
		}
		status := "exactly once, in order"
		if !ordered || int64(len(seqs)) != mc.Published() {
			status = fmt.Sprintf("PROBLEM: got %v", seqs)
			allGood = false
		}
		fmt.Printf("subscriber %d: %2d items — %s\n", id, len(seqs), status)
	}
	fmt.Println()
	fmt.Print(sys.Meter().Report(cfg.Params))
	if !allGood {
		return fmt.Errorf("delivery guarantee violated")
	}
	fmt.Println("\nevery subscriber saw the whole feed exactly once despite moves and a mid-feed disconnection")
	return nil
}
