// Proxydemo: separating mobility from algorithm design (Section 5).
//
// A Lamport mutual-exclusion algorithm written purely for static,
// message-passing processes (proxy.StaticMutex) is lifted unchanged onto a
// population of mobile hosts by the proxy runtime, twice:
//
//   - with home scope, each host's initial MSS is its lifetime proxy — the
//     algorithm is totally insulated from mobility, but every move sends an
//     inform message to the proxy;
//   - with local scope, the proxy is wherever the host currently is — no
//     inform traffic, but state hands off on every move and inter-proxy
//     messages must locate their peer.
//
// The demo runs the same roaming workload under both scopes and prints the
// cost split, making the paper's trade-off concrete.
//
// Run with: go run ./examples/proxydemo
package main

import (
	"fmt"
	"os"

	"mobiledist"
)

const (
	numMSS  = 6
	numMH   = 8
	movesEa = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxydemo:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("static Lamport mutex over %d mobile hosts, %d cells, %d moves each\n\n", numMH, numMSS, movesEa)
	for _, scope := range []mobiledist.ProxyScope{mobiledist.ScopeHome, mobiledist.ScopeLocal} {
		if err := trial(scope); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("the same algorithm text ran in both configurations; only the proxy association changed")
	return nil
}

func trial(scope mobiledist.ProxyScope) error {
	cfg := mobiledist.DefaultConfig(numMSS, numMH)
	cfg.Seed = 5
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		return err
	}

	var holders, peak int
	sm, err := mobiledist.NewStaticMutex(numMH, mobiledist.StaticMutexOptions{
		Hold: 30,
		OnEnter: func(p int) {
			holders++
			if holders > peak {
				peak = holders
			}
		},
		OnExit: func(p int) { holders-- },
	})
	if err != nil {
		return err
	}
	rt, err := mobiledist.NewProxyRuntime(sys, sm, mobiledist.AllMHs(numMH), mobiledist.ProxyOptions{Scope: scope})
	if err != nil {
		return err
	}

	if _, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
		Interval:      mobiledist.Span{Min: 100, Max: 600},
		RequestsPerMH: 1,
	}, func(mh mobiledist.MHID) error { return rt.Input(mh, mobiledist.ProxyRequestInput()) }); err != nil {
		return err
	}
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		Interval:   mobiledist.Span{Min: 400, Max: 1_200},
		MovesPerMH: movesEa,
		Locality:   0.4,
		Start:      50,
	}); err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		return err
	}

	p := cfg.Params
	fmt.Printf("--- %v scope ---\n", scope)
	fmt.Printf("grants=%d (peak holders %d), move reports=%d, handoffs=%d\n",
		sm.Grants(), peak, rt.MoveReports(), rt.Handoffs())
	fmt.Printf("algorithm cost %7.1f   mobility-coupling cost %7.1f   searches %d\n",
		sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p),
		sys.Meter().CategoryCost(mobiledist.CatLocation, p),
		sys.Stats().Searches)
	return nil
}
