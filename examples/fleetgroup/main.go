// Fleetgroup: dispatching to a vehicle fleet under the three location
// management strategies of Section 4.
//
// A dispatch centre sends periodic "all units" messages to a fleet of ten
// vehicles that drive between the twelve cells of a city. The example runs
// the identical workload under pure search, always inform, and location
// view, and prints the effective cost per group message for two fleets:
// one localised in a couple of districts (small |LV(G)|) and one scattered
// city-wide — reproducing the paper's conclusion that location view's cost
// tracks the significant fraction of moves and |LV(G)| rather than |G|.
//
// Run with: go run ./examples/fleetgroup
package main

import (
	"fmt"
	"os"

	"mobiledist"
)

const (
	numCells    = 12
	numVehicles = 20 // half are fleet members
	fleetSize   = 10
	messages    = 15
	window      = 60_000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgroup:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("fleet of %d vehicles, %d cells, %d dispatches, roaming throughout\n\n", fleetSize, numCells, messages)
	for _, scenario := range []struct {
		name     string
		cells    int // fleet spread over this many cells
		locality float64
	}{
		{name: "localised fleet (2 districts, local moves)", cells: 2, locality: 0.9},
		{name: "scattered fleet (city-wide, random moves)", cells: numCells, locality: 0.0},
	} {
		fmt.Printf("--- %s ---\n", scenario.name)
		for _, strat := range []string{"pure search", "always inform", "location view"} {
			res, err := trial(strat, scenario.cells, scenario.locality)
			if err != nil {
				return err
			}
			fmt.Println(res)
		}
		fmt.Println()
	}
	fmt.Println("location view pays per *significant* move and per view cell; the others pay per member")
	return nil
}

func trial(strat string, fleetCells int, locality float64) (string, error) {
	cfg := mobiledist.DefaultConfig(numCells, numVehicles)
	cfg.Seed = 99
	cfg.Placement = func(mh mobiledist.MHID) mobiledist.MSSID {
		if int(mh) < fleetSize {
			return mobiledist.MSSID(int(mh) % fleetCells)
		}
		return mobiledist.MSSID(int(mh) % numCells)
	}
	sys, err := mobiledist.NewSystem(cfg)
	if err != nil {
		return "", err
	}

	fleet := mobiledist.AllMHs(fleetSize)
	var comm mobiledist.GroupComm
	var lv *mobiledist.LocationView
	switch strat {
	case "pure search":
		comm, err = mobiledist.NewPureSearch(sys, fleet, mobiledist.GroupOptions{})
	case "always inform":
		comm, err = mobiledist.NewAlwaysInform(sys, fleet, mobiledist.GroupOptions{})
	case "location view":
		lv, err = mobiledist.NewLocationView(sys, fleet, mobiledist.LocationViewOptions{
			Coordinator:   mobiledist.MSSID(numCells - 1),
			CombineWindow: 200,
		})
		comm = lv
	default:
		return "", fmt.Errorf("unknown strategy %q", strat)
	}
	if err != nil {
		return "", err
	}

	// The fleet drives around (only members move; MOB/MSG = 10·3/15 = 2).
	if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
		MHs:        fleet,
		Interval:   mobiledist.Span{Min: window / 8, Max: window / 4},
		MovesPerMH: 3,
		Locality:   locality,
		Start:      100,
	}); err != nil {
		return "", err
	}
	tr, err := mobiledist.NewTraffic(sys, mobiledist.TrafficConfig{
		Senders:  fleet,
		Interval: mobiledist.FixedSpan(window / (messages + 1)),
		Messages: messages,
		Start:    250,
	}, func(mh mobiledist.MHID, payload any) error { return comm.Send(mh, payload) })
	if err != nil {
		return "", err
	}

	if err := sys.Run(); err != nil {
		return "", err
	}

	p := cfg.Params
	alg := sys.Meter().CategoryCost(mobiledist.CatAlgorithm, p)
	loc := sys.Meter().CategoryCost(mobiledist.CatLocation, p)
	eff := (alg + loc) / float64(tr.Sent())
	line := fmt.Sprintf("%-14s effective cost/message %7.1f  (messages %.0f + location upkeep %.0f; %d deliveries)",
		strat+":", eff, alg, loc, comm.Delivered())
	if lv != nil {
		line += fmt.Sprintf("  |LV| now %d, max %d, %d view updates", lv.ViewSize(), lv.MaxViewSize(), lv.Updates())
	}
	return line, nil
}
