// Command mobiletrace inspects observability traces captured by
// cmd/mobilexp's -trace flag (JSONL) or obs.Trace.MarshalBinary (the
// compact binary codec). Both formats are auto-detected.
//
// Usage:
//
//	mobiletrace diff [-ignore-time] A B
//	mobiletrace show [-kinds leave,join,...] [-no-time] FILE
//	mobiletrace spacetime [-limit N] FILE
//
// diff compares two traces event by event and exits 1 when they differ —
// the determinism check: two runs of the same seeded simulation must
// produce byte-identical traces, and a sim-vs-live pair must agree on the
// timeless event sequence (-ignore-time strips the clocks, which differ
// across substrates).
//
// show prints the event stream as canonical lines, optionally filtered to
// the named kinds.
//
// spacetime renders a text space-time (Lamport) diagram: one lane per
// station and per mobile host, one row per event, transmissions drawn as
// arrows between lanes. It needs a trace with a single recorded topology.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mobiledist/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "mobiletrace: want a subcommand: diff, show, spacetime")
		return 2
	}
	var err error
	switch args[0] {
	case "diff":
		var differs bool
		differs, err = runDiff(args[1:], stdout)
		if err == nil && differs {
			return 1
		}
	case "show":
		err = runShow(args[1:], stdout)
	case "spacetime":
		err = runSpacetime(args[1:], stdout)
	default:
		err = fmt.Errorf("unknown subcommand %q (want diff, show, spacetime)", args[0])
	}
	if err != nil {
		fmt.Fprintln(stderr, "mobiletrace:", err)
		return 2
	}
	return 0
}

// loadTrace reads a trace file in either format, sniffing the binary magic.
func loadTrace(path string) (obs.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.Trace{}, err
	}
	if bytes.HasPrefix(data, []byte("MOBTRC")) {
		return obs.UnmarshalBinary(data)
	}
	return obs.ReadJSONL(bytes.NewReader(data))
}

const maxShownDiffs = 20

// runDiff compares two traces; differs reports whether they diverge.
func runDiff(args []string, out io.Writer) (differs bool, err error) {
	fs := flag.NewFlagSet("mobiletrace diff", flag.ContinueOnError)
	ignoreTime := fs.Bool("ignore-time", false, "compare events without timestamps (for sim-vs-live traces, whose clocks differ)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff wants exactly two trace files")
	}
	a, err := loadTrace(fs.Arg(0))
	if err != nil {
		return false, fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	b, err := loadTrace(fs.Arg(1))
	if err != nil {
		return false, fmt.Errorf("%s: %w", fs.Arg(1), err)
	}

	var diffs int
	report := func(format, va, vb string) {
		diffs++
		if diffs <= maxShownDiffs {
			fmt.Fprintf(out, "  %s: -%s\n  %*s  +%s\n", format, va, len(format), "", vb)
		}
	}
	if a.M != b.M || a.N != b.N {
		report("topology", fmt.Sprintf("M=%d N=%d", a.M, a.N), fmt.Sprintf("M=%d N=%d", b.M, b.N))
	}
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	withTime := !*ignoreTime
	for i := 0; i < n; i++ {
		la, lb := a.Events[i].Line(withTime), b.Events[i].Line(withTime)
		if la != lb {
			report(fmt.Sprintf("event %d", i), la, lb)
		}
	}
	for i := n; i < len(a.Events); i++ {
		report(fmt.Sprintf("event %d", i), a.Events[i].Line(withTime), "(missing)")
	}
	for i := n; i < len(b.Events); i++ {
		report(fmt.Sprintf("event %d", i), "(missing)", b.Events[i].Line(withTime))
	}

	if diffs == 0 {
		fmt.Fprintf(out, "traces identical: %d events\n", len(a.Events))
		return false, nil
	}
	if diffs > maxShownDiffs {
		fmt.Fprintf(out, "  ... %d more\n", diffs-maxShownDiffs)
	}
	fmt.Fprintf(out, "traces differ: %d differences (%d vs %d events)\n", diffs, len(a.Events), len(b.Events))
	return true, nil
}

func runShow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobiletrace show", flag.ContinueOnError)
	kinds := fs.String("kinds", "", "comma-separated event kinds to keep (default: all)")
	noTime := fs.Bool("no-time", false, "omit timestamps (the cross-substrate comparison form)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show wants exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	events := tr.Events
	if *kinds != "" {
		var keep []obs.EventKind
		for _, name := range strings.Split(*kinds, ",") {
			k, ok := obs.KindFromString(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown event kind %q", name)
			}
			keep = append(keep, k)
		}
		events = obs.Filter(events, obs.KindFilter(keep...))
	}
	fmt.Fprintf(out, "# trace M=%d N=%d events=%d shown=%d\n", tr.M, tr.N, len(tr.Events), len(events))
	for _, line := range obs.Lines(events, !*noTime) {
		fmt.Fprintln(out, line)
	}
	return nil
}

func runSpacetime(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobiletrace spacetime", flag.ContinueOnError)
	limit := fs.Int("limit", 200, "maximum rows to render (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spacetime wants exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	return renderSpacetime(tr, *limit, out)
}
