package main

import (
	"bufio"
	"fmt"
	"io"

	"mobiledist/internal/engine"
	"mobiledist/internal/obs"
)

// renderSpacetime draws the trace as a text space-time (Lamport) diagram:
// one lane per station (s0..s{M-1}) and per mobile host (h0..h{N-1}), one
// row per event. Transmissions are arrows from the sending lane to the
// receiving one; uplink transmissions show only the sender (the receiving
// MSS depends on where the MH is). Mobility and critical-section events
// mark the MH's lane with a letter:
//
//	L leave   J join   D disconnect   R reconnect   H handoff
//	q cs-request   E cs-enter   X cs-exit   v deliver   * other
//
// Store-carry-forward (DTN) bundle events mark the custodian station's
// lane, and replica transfers draw an arrow between the station lanes:
//
//	c custody accepted   b bundle delivered   x bundle expired
//	! bundle dropped     o--->  replica transfer
func renderSpacetime(tr obs.Trace, limit int, out io.Writer) error {
	if tr.M <= 0 || tr.N <= 0 {
		return fmt.Errorf("trace has no single topology (M=%d N=%d): spacetime needs a trace captured from one system shape", tr.M, tr.N)
	}
	layout := engine.ChannelLayout{M: tr.M, N: tr.N}
	lanes := tr.M + tr.N
	w := bufio.NewWriter(out)

	// Header: lane labels, stations first.
	fmt.Fprintf(w, "%10s ", "time")
	for i := 0; i < tr.M; i++ {
		fmt.Fprintf(w, "%-3s", fmt.Sprintf("s%d", i))
	}
	for i := 0; i < tr.N; i++ {
		fmt.Fprintf(w, "%-3s", fmt.Sprintf("h%d", i))
	}
	fmt.Fprintln(w)

	rows := len(tr.Events)
	if limit > 0 && rows > limit {
		rows = limit
	}
	row := make([]byte, lanes)
	for _, ev := range tr.Events[:rows] {
		for i := range row {
			row[i] = '.'
		}
		from, to := -1, -1
		mark := byte(0)
		markLane := -1
		switch ev.Kind {
		case obs.EvTransmit:
			kind, a, b := layout.Decode(int(ev.A))
			switch kind {
			case engine.ChannelWired:
				from, to = a, b
			case engine.ChannelDown:
				from, to = a, tr.M+b
			case engine.ChannelUp:
				mark, markLane = '^', tr.M+b
			}
		case obs.EvDeliver:
			mark, markLane = 'v', tr.M+int(ev.A)
		case obs.EvLeave:
			mark, markLane = 'L', tr.M+int(ev.A)
		case obs.EvJoin:
			mark, markLane = 'J', tr.M+int(ev.A)
		case obs.EvDisconnect:
			mark, markLane = 'D', tr.M+int(ev.A)
		case obs.EvReconnect:
			mark, markLane = 'R', tr.M+int(ev.A)
		case obs.EvHandoff:
			mark, markLane = 'H', tr.M+int(ev.A)
		case obs.EvCSRequest:
			mark, markLane = 'q', tr.M+int(ev.A)
		case obs.EvCSEnter:
			mark, markLane = 'E', tr.M+int(ev.A)
		case obs.EvCSExit:
			mark, markLane = 'X', tr.M+int(ev.A)
		case obs.EvBundleCustody:
			mark, markLane = 'c', int(ev.B)%lanes
		case obs.EvBundleTransfer:
			from, to = int(ev.B), int(ev.C)
		case obs.EvBundleDelivered:
			mark, markLane = 'b', int(ev.B)%lanes
		case obs.EvBundleExpired:
			mark, markLane = 'x', int(ev.B)%lanes
		case obs.EvBundleDropped:
			mark, markLane = '!', int(ev.B)%lanes
		case obs.EvSearch, obs.EvFailure:
			mark, markLane = '*', int(ev.B)%lanes
		}
		switch {
		case from >= 0 && to >= 0 && from != to:
			lo, hi := from, to
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo; i <= hi; i++ {
				row[i] = '-'
			}
			row[from] = 'o'
			row[to] = '>'
		case from >= 0:
			row[from] = 'o'
		case markLane >= 0 && markLane < lanes:
			row[markLane] = mark
		}
		fmt.Fprintf(w, "%10d ", int64(ev.T))
		for _, c := range row {
			w.WriteByte(c)
			w.WriteString("  ")
		}
		fmt.Fprintf(w, " %s\n", ev.Line(false))
	}
	if rows < len(tr.Events) {
		fmt.Fprintf(w, "... %d more events (raise -limit)\n", len(tr.Events)-rows)
	}
	return w.Flush()
}
