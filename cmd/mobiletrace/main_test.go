package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiledist"
	"mobiledist/internal/obs"
)

// captureTrace runs a small seeded simulation with a scripted mobility
// workload and writes its trace to path (JSONL, or binary when bin).
func captureTrace(t *testing.T, path string, seed uint64, bin bool) {
	t.Helper()
	tracer := mobiledist.NewTracer(0)
	cfg := mobiledist.DefaultConfig(2, 3)
	cfg.Seed = seed
	cfg.Obs = tracer
	sys := mobiledist.MustNewSystem(cfg)
	sys.Schedule(0, func() { _ = sys.Move(0, 1) })
	sys.Schedule(50, func() { _ = sys.Disconnect(1) })
	sys.Schedule(150, func() { _ = sys.Reconnect(1, 0, true) })
	sys.Schedule(300, func() { _ = sys.Move(2, 1) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := tracer.Snapshot()
	if bin {
		data, err := tr.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
}

func TestDiffIdenticalRuns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	captureTrace(t, a, 7, false)
	captureTrace(t, b, 7, false)
	var out, errOut strings.Builder
	if code := run([]string{"diff", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("diff of identical runs: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "traces identical") {
		t.Errorf("diff output: %q", out.String())
	}
}

func TestDiffBinaryVsJSONL(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.bin")
	captureTrace(t, a, 7, false)
	captureTrace(t, b, 7, true)
	var out, errOut strings.Builder
	if code := run([]string{"diff", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("cross-format diff: exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	captureTrace(t, a, 7, false)
	captureTrace(t, b, 8, false)
	var out, errOut strings.Builder
	if code := run([]string{"diff", a, b}, &out, &errOut); code != 1 {
		t.Fatalf("diff of different seeds: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "traces differ") {
		t.Errorf("diff output: %q", out.String())
	}
}

func TestShowFiltersKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	captureTrace(t, path, 7, false)
	var out, errOut strings.Builder
	if code := run([]string{"show", "-kinds", "leave,join", "-no-time", path}, &out, &errOut); code != 0 {
		t.Fatalf("show: exit %d\n%s", code, errOut.String())
	}
	for i, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if i == 0 {
			continue // header comment
		}
		if !strings.HasPrefix(line, "leave ") && !strings.HasPrefix(line, "join ") {
			t.Errorf("unexpected line after kind filter: %q", line)
		}
	}
	if !strings.Contains(out.String(), "join 1 0 1") {
		t.Errorf("reconnect join missing from filtered show:\n%s", out.String())
	}
}

func TestSpacetimeRenders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	captureTrace(t, path, 7, false)
	var out, errOut strings.Builder
	if code := run([]string{"spacetime", path}, &out, &errOut); code != 0 {
		t.Fatalf("spacetime: exit %d\n%s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "s0") || !strings.Contains(text, "h2") {
		t.Errorf("lane header missing:\n%.200s", text)
	}
	for _, mark := range []string{"L", "J", "D", "R", "H"} {
		if !strings.Contains(text, mark+"  ") {
			t.Errorf("mobility mark %q missing from diagram", mark)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"diff", "only-one"}, &out, &errOut); code != 2 {
		t.Errorf("diff with one file: exit %d, want 2", code)
	}
	if code := run([]string{"show", filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestSpacetimeGoldenDTN pins the exact diagram rendered for the
// store-carry-forward bundle events: custody and terminal marks on the
// custodian station's lane, replica transfers as station-to-station
// arrows. The trace is hand-built so the golden output is stable.
func TestSpacetimeGoldenDTN(t *testing.T) {
	tr := obs.Trace{M: 3, N: 1, Events: []obs.Event{
		{T: 10, Kind: obs.EvDisconnect, A: 0, B: 2},
		{T: 20, Kind: obs.EvBundleCustody, A: 1, B: 2, C: 0},
		{T: 30, Kind: obs.EvBundleTransfer, A: 1, B: 2, C: 0},
		{T: 40, Kind: obs.EvBundleExpired, A: 2, B: 1, C: 0},
		{T: 50, Kind: obs.EvBundleDropped, A: 3, B: 0, C: 0},
		{T: 60, Kind: obs.EvReconnect, A: 0, B: 1},
		{T: 70, Kind: obs.EvBundleDelivered, A: 1, B: 0, C: 2},
	}}
	path := filepath.Join(t.TempDir(), "dtn.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	f.Close()
	var out, errOut strings.Builder
	if code := run([]string{"spacetime", path}, &out, &errOut); code != 0 {
		t.Fatalf("spacetime: exit %d\n%s", code, errOut.String())
	}
	golden := "" +
		"      time s0 s1 s2 h0 \n" +
		"        10 .  .  .  D   disconnect 0 2 0\n" +
		"        20 .  .  c  .   bundle-custody 1 2 0\n" +
		"        30 >  -  o  .   bundle-transfer 1 2 0\n" +
		"        40 .  x  .  .   bundle-expired 2 1 0\n" +
		"        50 !  .  .  .   bundle-dropped 3 0 0\n" +
		"        60 .  .  .  R   reconnect 0 1 0\n" +
		"        70 b  .  .  .   bundle-delivered 1 0 2\n"
	if got := out.String(); got != golden {
		t.Errorf("spacetime DTN diagram diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
