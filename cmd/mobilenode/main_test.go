package main

import (
	"encoding/base64"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mobiledist/internal/dgram"
	"mobiledist/internal/netrt"
)

// TestDemoCompletesTokenRingRun is the acceptance scenario: a loopback
// cluster of 3 MSS nodes and 4 MH clients completes an R2 token-ring run
// with leave/join handoffs and prints the cost/Stats table.
func TestDemoCompletesTokenRingRun(t *testing.T) {
	var out syncBuilder
	if err := run([]string{"-role", "demo", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run demo: %v", err)
	}
	text := out.String()
	for i := 0; i < 4; i++ {
		want := "mh" + string(rune('0'+i))
		if !strings.Contains(text, want+" ") {
			t.Errorf("demo output missing a CS entry for %s:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "4 grants over TCP transport") {
		t.Errorf("demo output missing grant summary:\n%s", text)
	}
	if !strings.Contains(text, "moves=2") {
		t.Errorf("demo output missing the two leave/join handoffs:\n%s", text)
	}
	if !strings.Contains(text, "algorithm") || !strings.Contains(text, "total cost") {
		t.Errorf("demo output missing the cost table:\n%s", text)
	}
}

// TestDemoOverUDPTransport runs the same acceptance scenario with every
// link an authenticated datagram session instead of a TCP stream.
func TestDemoOverUDPTransport(t *testing.T) {
	var out syncBuilder
	if err := run([]string{"-role", "demo", "-seed", "3", "-transport", "udp"}, &out); err != nil {
		t.Fatalf("run demo -transport udp: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "4 grants over UDP transport") {
		t.Errorf("demo output missing UDP grant summary:\n%s", text)
	}
	if !strings.Contains(text, "moves=2") {
		t.Errorf("demo output missing the two leave/join handoffs:\n%s", text)
	}
}

// TestMintTokenPrintsValidBlob: -mint-token emits a base64 blob whose token
// part validates under the cluster secret for every cluster address, and
// whose trailing KeySize bytes are the matching session key.
func TestMintTokenPrintsValidBlob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	var out syncBuilder
	err := run([]string{"-init", "-m", "2", "-n", "3", "-base", "127.0.0.1:9500",
		"-cluster", path, "-transport", "udp", "-secret", "hunter2"}, &out)
	if err != nil {
		t.Fatalf("run -init: %v", err)
	}
	out = syncBuilder{}
	if err := run([]string{"-mint-token", "-cluster", path, "-id", "1", "-ttl", "1h"}, &out); err != nil {
		t.Fatalf("run -mint-token: %v", err)
	}
	blob, err := base64.StdEncoding.DecodeString(strings.TrimSpace(out.String()))
	if err != nil {
		t.Fatalf("-mint-token output is not base64: %v\n%s", err, out.String())
	}
	if len(blob) <= dgram.KeySize {
		t.Fatalf("blob too short: %d bytes", len(blob))
	}
	token, key := blob[:len(blob)-dgram.KeySize], blob[len(blob)-dgram.KeySize:]
	for _, addr := range []string{"127.0.0.1:9500", "127.0.0.1:9501", "127.0.0.1:9502"} {
		info, wantKey, err := dgram.Validate([]byte("hunter2"), token, addr, time.Now())
		if err != nil {
			t.Fatalf("minted token refused at %s: %v", addr, err)
		}
		if info.ID != 1 {
			t.Errorf("token ID = %d, want 1", info.ID)
		}
		if string(wantKey) != string(key) {
			t.Error("blob's trailing key does not match the token's derived session key")
		}
	}
	if _, _, err := dgram.Validate([]byte("hunter2"), token, "10.0.0.1:9", time.Now()); err == nil {
		t.Error("minted token accepted at an unbound address")
	}
}

// TestInitWritesLoadableClusterFile checks -init round-trips through
// netrt.LoadCluster with sequential ports.
func TestInitWritesLoadableClusterFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	var out syncBuilder
	err := run([]string{"-init", "-m", "3", "-n", "5", "-base", "127.0.0.1:9400", "-cluster", path}, &out)
	if err != nil {
		t.Fatalf("run -init: %v", err)
	}
	cc, err := netrt.LoadCluster(path)
	if err != nil {
		t.Fatalf("LoadCluster: %v", err)
	}
	if cc.Hub != "127.0.0.1:9400" || cc.M != 3 || cc.N != 5 {
		t.Errorf("cluster = %+v", cc)
	}
	if cc.MSS[0] != "127.0.0.1:9401" || cc.MSS[2] != "127.0.0.1:9403" {
		t.Errorf("MSS addresses not sequential: %v", cc.MSS)
	}
}

// TestHubDrivesExternalNodesAndClients runs the three roles as separate
// in-process instances wired through a cluster file on ephemeral ports —
// the multi-process deployment, minus the processes.
func TestHubDrivesExternalNodesAndClients(t *testing.T) {
	cc, listeners := ephemeralCluster(t, 2, 3)

	cfg := netrt.DefaultConfig(cc.M, cc.N)
	cfg.ListenAddr = cc.Hub
	cfg.MSSAddrs = cc.MSS
	sys, err := netrt.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cc.Hub = sys.Addr() // the hub bound an ephemeral port; tell the others

	nodes := make([]*netrt.Node, cc.M)
	for i := range nodes {
		n, err := netrt.StartNode(netrt.NodeConfig{ID: i, Cluster: cc, Listener: listeners[i]})
		if err != nil {
			t.Fatalf("StartNode %d: %v", i, err)
		}
		nodes[i] = n
	}
	clients := make([]*netrt.Client, cc.N)
	for h := range clients {
		c, err := netrt.StartClient(netrt.ClientConfig{ID: h, Cluster: cc})
		if err != nil {
			t.Fatalf("StartClient %d: %v", h, err)
		}
		clients[h] = c
	}

	var out syncBuilder
	if err := demoWorkload(&out, sys, cc.M, cc.N, 30*time.Second); err != nil {
		t.Fatalf("demoWorkload: %v", err)
	}
	if !strings.Contains(out.String(), "grants over TCP transport") {
		t.Errorf("hub output missing grant summary:\n%s", out.String())
	}
	// The hub's goodbye must shut relays and clients down on its own.
	done := make(chan struct{})
	go func() {
		for _, n := range nodes {
			n.Wait()
		}
		for _, c := range clients {
			c.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nodes/clients did not exit after the hub said goodbye")
	}
}

// fakeProcess scripts one supervised incarnation for unit tests.
type fakeProcess struct {
	bye  bool
	dead chan struct{}
}

func (f *fakeProcess) Wait()         { <-f.dead }
func (f *fakeProcess) SaidBye() bool { return f.bye }
func (f *fakeProcess) Stop()         {}
func (f *fakeProcess) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
}

// TestSuperviseRestartsUntilBye: the supervision loop replaces crashed
// incarnations (with backoff), keeps the health endpoint answering across
// the generation gap, and exits cleanly when an incarnation reports the
// hub's orderly goodbye.
func TestSuperviseRestartsUntilBye(t *testing.T) {
	var out syncBuilder
	incarnations := make(chan *fakeProcess, 3)
	starts := 0
	start := func() (process, error) {
		starts++
		p := &fakeProcess{bye: starts >= 3, dead: make(chan struct{})}
		incarnations <- p
		return p, nil
	}
	done := make(chan error, 1)
	go func() { done <- superviseProcess(&out, "mss0", "127.0.0.1:0", start) }()

	for i := 0; i < 3; i++ {
		select {
		case p := <-incarnations:
			close(p.dead) // this incarnation dies (or, on the third, says bye)
		case <-time.After(10 * time.Second):
			t.Fatalf("incarnation %d never started", i+1)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("supervise: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("supervise did not exit after the goodbye incarnation")
	}
	if starts != 3 {
		t.Errorf("started %d incarnations, want 3", starts)
	}
	text := out.String()
	if !strings.Contains(text, "restarting in") || !strings.Contains(text, "goodbye") {
		t.Errorf("supervise log missing restart/goodbye lines:\n%s", text)
	}
}

// TestApplyEnvOverrides: the MOBILEDIST_* variables overlay the cluster
// file's liveness and reconnect tuning.
func TestApplyEnvOverrides(t *testing.T) {
	t.Setenv("MOBILEDIST_HEARTBEAT_MS", "40")
	t.Setenv("MOBILEDIST_DIAL_BACKOFF_MIN_MS", "2")
	t.Setenv("MOBILEDIST_DIAL_BACKOFF_MAX_MS", "100")
	cc := applyEnv(netrt.ClusterConfig{Hub: "h", M: 1, N: 1, MSS: []string{"a"}})
	if cc.HeartbeatMS != 40 || cc.DialBackoffMinMS != 2 || cc.DialBackoffMaxMS != 100 {
		t.Errorf("applyEnv = %+v, want 40/2/100", cc)
	}
	t.Setenv("MOBILEDIST_HEARTBEAT_MS", "not-a-number")
	if cc2 := applyEnv(netrt.ClusterConfig{}); cc2.HeartbeatMS != 0 {
		t.Errorf("malformed env applied: %+v", cc2)
	}
}

// TestDemoServesHealthEndpoint: -health on the demo role answers /health
// while the workload runs (polled concurrently, since runDemo is
// synchronous).
func TestDemoServesHealthEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for -health to rebind

	var out syncBuilder
	done := make(chan error, 1)
	go func() { done <- run([]string{"-role", "demo", "-seed", "5", "-health", addr}, &out) }()

	deadline := time.Now().Add(15 * time.Second)
	healthy := false
	for !healthy && time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/health")
		if err == nil {
			if resp.StatusCode == 200 {
				healthy = true
			}
			resp.Body.Close()
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run demo: %v", err)
			}
			if !healthy {
				t.Fatal("demo finished before /health ever answered")
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !healthy {
		t.Fatal("/health never answered 200 during the demo")
	}
	if err := <-done; err != nil {
		t.Fatalf("run demo: %v", err)
	}
}

func TestUnknownRoleRejected(t *testing.T) {
	var out syncBuilder
	if err := run([]string{"-role", "teapot"}, &out); err == nil {
		t.Error("unknown role accepted")
	}
}

func TestClusterRolesNeedClusterFile(t *testing.T) {
	var out syncBuilder
	for _, role := range []string{"hub", "mss", "mh"} {
		if err := run([]string{"-role", role}, &out); err == nil {
			t.Errorf("-role %s without -cluster accepted", role)
		}
	}
}

// ephemeralCluster binds M station listeners on ephemeral loopback ports
// and returns the matching cluster config (the hub address is a placeholder
// until the hub binds its own ephemeral port).
func ephemeralCluster(t *testing.T, m, n int) (netrt.ClusterConfig, []net.Listener) {
	t.Helper()
	listeners := make([]net.Listener, m)
	addrs := make([]string, m)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { ln.Close() })
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return netrt.ClusterConfig{
		Hub: "127.0.0.1:0",
		MSS: addrs,
		M:   m,
		N:   n,
	}, listeners
}

// syncBuilder is a strings.Builder safe for the demo's two writers (the
// executor's OnEnter callback and the driving goroutine).
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
