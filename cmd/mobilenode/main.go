// Command mobilenode runs pieces of a TCP-backed two-tier cluster — the
// deployment the paper describes: mobile support stations as real machines
// on a wired network, mobile hosts reaching their serving station over a
// wireless link. Here every link is a TCP connection (internal/netrt), and
// the model engine runs at a hub process.
//
// Roles:
//
//	mobilenode -init -m 3 -n 4 -cluster cluster.json [-base 127.0.0.1:9200]
//	    write a cluster address file for 3 stations and 4 hosts
//	mobilenode -role hub -cluster cluster.json
//	    run the hub: hosts the engine, drives the demo R2 token-ring
//	    workload across the cluster, prints the cost/Stats table, then
//	    shuts the cluster down
//	mobilenode -role mss -id 0 -cluster cluster.json
//	    run one MSS relay node (repeat for each id in [0, M))
//	mobilenode -role mh -id 0 -cluster cluster.json
//	    run one MH client (repeat for each id in [0, N))
//	mobilenode -role demo
//	    the whole thing in one process: a loopback cluster of 3 MSS nodes
//	    and 4 MH clients completes an R2 token-ring run with leave/join
//	    handoffs — traffic still crosses real TCP sockets
//
// Start the MSS and MH processes in any order: connections retry with
// backoff, traffic queues in outboxes, and the hub's workload begins once
// the cluster reports ready. Relays and clients exit when the hub says
// goodbye.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/netrt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilenode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobilenode", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		role    = fs.String("role", "demo", "process role: demo, hub, mss, or mh")
		cluster = fs.String("cluster", "", "cluster address file (JSON)")
		id      = fs.Int("id", 0, "station or host id for -role mss/mh")
		doInit  = fs.Bool("init", false, "write a cluster file for -m/-n and exit")
		m       = fs.Int("m", 3, "number of mobile support stations (-init)")
		n       = fs.Int("n", 4, "number of mobile hosts (-init)")
		base    = fs.String("base", "127.0.0.1:9200", "first address for -init; subsequent ports count up")
		seed    = fs.Uint64("seed", 1, "latency RNG seed (hub)")
		timeout = fs.Duration("timeout", 30*time.Second, "cluster ready/drain timeout (hub)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *doInit {
		if *cluster == "" {
			return fmt.Errorf("-init needs -cluster FILE")
		}
		cc, err := initCluster(*m, *n, *base)
		if err != nil {
			return err
		}
		if err := cc.Save(*cluster); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: hub %s, %d stations, %d hosts\n", *cluster, cc.Hub, cc.M, cc.N)
		return nil
	}

	switch *role {
	case "demo":
		return runDemo(out, *seed, *timeout)
	case "hub", "mss", "mh":
		if *cluster == "" {
			return fmt.Errorf("-role %s needs -cluster FILE", *role)
		}
		cc, err := netrt.LoadCluster(*cluster)
		if err != nil {
			return err
		}
		switch *role {
		case "hub":
			return runHub(out, cc, *seed, *timeout)
		case "mss":
			node, err := netrt.StartNode(netrt.NodeConfig{ID: *id, Cluster: cc})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "mss%d relaying on %s\n", *id, node.Addr())
			node.Wait()
			return nil
		default:
			client, err := netrt.StartClient(netrt.ClientConfig{ID: *id, Cluster: cc})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "mh%d on the wireless tier\n", *id)
			client.Wait()
			return nil
		}
	default:
		return fmt.Errorf("unknown role %q (want demo, hub, mss, or mh)", *role)
	}
}

// initCluster assigns sequential ports starting at base: hub first, then
// one per station.
func initCluster(m, n int, base string) (netrt.ClusterConfig, error) {
	var cc netrt.ClusterConfig
	if m < 1 || n < 1 {
		return cc, fmt.Errorf("need -m >= 1 and -n >= 1 (got %d, %d)", m, n)
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return cc, fmt.Errorf("bad -base %q: want host:port", base)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return cc, fmt.Errorf("bad -base port %q", portStr)
	}
	cc.Hub = net.JoinHostPort(host, strconv.Itoa(port))
	cc.M, cc.N = m, n
	cc.MSS = make([]string, m)
	for i := range cc.MSS {
		cc.MSS[i] = net.JoinHostPort(host, strconv.Itoa(port+1+i))
	}
	return cc, nil
}

// runHub hosts the engine for an externally launched cluster and drives the
// demo workload across it.
func runHub(out io.Writer, cc netrt.ClusterConfig, seed uint64, timeout time.Duration) error {
	cfg := netrt.DefaultConfig(cc.M, cc.N)
	cfg.Seed = seed
	cfg.ListenAddr = cc.Hub
	cfg.MSSAddrs = cc.MSS
	if cc.TickUS > 0 {
		cfg.Tick = time.Duration(cc.TickUS) * time.Microsecond
	}
	sys, err := netrt.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hub listening on %s; waiting for %d stations and %d hosts\n", sys.Addr(), cc.M, cc.N)
	return demoWorkload(out, sys, cc.M, cc.N, timeout)
}

// runDemo launches a full loopback cluster — 3 MSS relay nodes and 4 MH
// clients on 127.0.0.1 sockets — and drives the same workload.
func runDemo(out io.Writer, seed uint64, timeout time.Duration) error {
	const m, n = 3, 4
	cfg := netrt.DefaultConfig(m, n)
	cfg.Seed = seed
	lb, err := netrt.StartLoopback(cfg)
	if err != nil {
		return err
	}
	defer lb.Stop()
	fmt.Fprintf(out, "loopback cluster: hub %s, %d MSS nodes, %d MH clients\n", lb.Sys.Addr(), m, n)
	return demoWorkload(out, lb.Sys, m, n, timeout)
}

// demoWorkload is the R2 token-ring run both hub and demo roles execute:
// every host requests the critical section, the token makes two traversals,
// and two hosts hand off between cells (leave/join) mid-run — then the
// cost/Stats table shows what crossing real links did (and did not) change.
func demoWorkload(out io.Writer, sys *netrt.System, m, n int, timeout time.Duration) error {
	defer sys.Stop()

	var grants int
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			grants++
			fmt.Fprintf(out, "mh%-2d enters the critical section\n", int(mh))
		},
	}, 2, nil)
	if err != nil {
		return err
	}

	sys.Start()
	if !sys.WaitReady(timeout) {
		return fmt.Errorf("cluster did not become ready within %v", timeout)
	}
	fmt.Fprintf(out, "cluster ready: every station and host connected\n\n")

	sys.Do(func() {
		for i := 0; i < n; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				fmt.Fprintln(out, "request:", err)
			}
		}
	})
	// Leave/join handoffs while requests are in flight: each move physically
	// re-dials the client's wireless connection to its new station. Targets
	// are one cell over from each host's round-robin starting cell.
	sys.Move(1, core.MSSID((1+1)%m))
	sys.Move(core.MHID(n-1), core.MSSID(((n-1)+1)%m))
	sys.Do(func() {
		if err := r2.Start(); err != nil {
			fmt.Fprintln(out, "start:", err)
		}
	})
	if !sys.WaitIdle(timeout) {
		return fmt.Errorf("network did not drain within %v", timeout)
	}

	var snapGrants int
	sys.Do(func() { snapGrants = grants })
	grants = snapGrants
	st := sys.Stats()
	cfgp := sys.Config().Params
	fmt.Fprintf(out, "\n%d grants over TCP transport; %d searches performed\n", grants, st.Searches)
	fmt.Fprintf(out, "moves=%d handoffs(leave/join)=%d disconnects=%d reconnects=%d\n",
		st.Moves, st.Moves, st.Disconnects, st.Reconnects)
	fmt.Fprint(out, sys.Meter().Report(cfgp))
	return nil
}
