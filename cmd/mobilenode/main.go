// Command mobilenode runs pieces of a socket-backed two-tier cluster — the
// deployment the paper describes: mobile support stations as real machines
// on a wired network, mobile hosts reaching their serving station over a
// wireless link. Every link is a real socket (internal/netrt): a TCP stream
// by default, or an authenticated UDP datagram session (internal/dgram)
// with -transport udp. The model engine runs at a hub process.
//
// Roles:
//
//	mobilenode -init -m 3 -n 4 -cluster cluster.json [-base 127.0.0.1:9200]
//	    write a cluster address file for 3 stations and 4 hosts
//	mobilenode -role hub -cluster cluster.json
//	    run the hub: hosts the engine, drives the demo R2 token-ring
//	    workload across the cluster, prints the cost/Stats table, then
//	    shuts the cluster down
//	mobilenode -role mss -id 0 -cluster cluster.json
//	    run one MSS relay node (repeat for each id in [0, M))
//	mobilenode -role mh -id 0 -cluster cluster.json
//	    run one MH client (repeat for each id in [0, N))
//	mobilenode -role demo
//	    the whole thing in one process: a loopback cluster of 3 MSS nodes
//	    and 4 MH clients completes an R2 token-ring run with leave/join
//	    handoffs — traffic still crosses real TCP sockets
//
// Start the MSS and MH processes in any order: connections retry with
// backoff, traffic queues in outboxes, and the hub's workload begins once
// the cluster reports ready. Relays and clients exit when the hub says
// goodbye.
//
// Operational surface:
//
//   - -health ADDR serves the role's /health and /status JSON endpoints
//     (plus /metrics on the hub) on ADDR for probes and dashboards.
//   - -supervise (mss/mh) auto-restarts the process's incarnation with
//     capped, jittered backoff whenever it dies for any reason other than
//     the hub's orderly goodbye. Each restart claims generation 0 in its
//     hello, so the hub fences the dead incarnation and replays the
//     unconfirmed suffix.
//   - MOBILEDIST_HEARTBEAT_MS, MOBILEDIST_DIAL_BACKOFF_MIN_MS and
//     MOBILEDIST_DIAL_BACKOFF_MAX_MS override the cluster file's liveness
//     cadence and reconnect pacing per process.
//   - -transport tcp|udp selects the socket substrate; with -init it is
//     stamped into the cluster file, otherwise it overrides the file (every
//     process must agree). -secret overrides the UDP token-minting secret
//     the same way.
//   - -mint-token prints a base64 connect-token blob (token plus session
//     key) bound to every address in the cluster file, valid for -ttl.
//     Hand it to an MH process via -token to dial over UDP with a
//     credential minted out of band instead of one self-minted from the
//     shared secret. /status on every role reports the active transport
//     and per-session datagram counters (retransmits, replay drops).
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mobiledist/internal/core"
	"mobiledist/internal/dgram"
	"mobiledist/internal/mutex/ring"
	"mobiledist/internal/netrt"
	"mobiledist/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilenode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobilenode", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		role    = fs.String("role", "demo", "process role: demo, hub, mss, or mh")
		cluster = fs.String("cluster", "", "cluster address file (JSON)")
		id      = fs.Int("id", 0, "station or host id for -role mss/mh")
		doInit  = fs.Bool("init", false, "write a cluster file for -m/-n and exit")
		m       = fs.Int("m", 3, "number of mobile support stations (-init)")
		n       = fs.Int("n", 4, "number of mobile hosts (-init)")
		base    = fs.String("base", "127.0.0.1:9200", "first address for -init; subsequent ports count up")
		seed      = fs.Uint64("seed", 1, "latency RNG seed (hub)")
		timeout   = fs.Duration("timeout", 30*time.Second, "cluster ready/drain timeout (hub)")
		health    = fs.String("health", "", "serve the role's /health and /status endpoints on this address")
		supervise = fs.Bool("supervise", false, "auto-restart mss/mh incarnations with capped backoff until the hub says goodbye")
		transport = fs.String("transport", "", "socket substrate: tcp or udp (with -init: stamped into the cluster file; otherwise overrides it)")
		secret    = fs.String("secret", "", "UDP token-minting secret (with -init: stamped into the cluster file; otherwise overrides it)")
		mintToken = fs.Bool("mint-token", false, "print a base64 UDP connect-token blob for -id bound to every cluster address, then exit")
		ttl       = fs.Duration("ttl", time.Hour, "minted token lifetime (-mint-token)")
		token64   = fs.String("token", "", "base64 connect-token blob for -role mh (see -mint-token)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *doInit {
		if *cluster == "" {
			return fmt.Errorf("-init needs -cluster FILE")
		}
		cc, err := initCluster(*m, *n, *base)
		if err != nil {
			return err
		}
		cc.Transport, cc.Secret = *transport, *secret
		if err := cc.Validate(); err != nil {
			return err
		}
		if err := cc.Save(*cluster); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: hub %s, %d stations, %d hosts\n", *cluster, cc.Hub, cc.M, cc.N)
		return nil
	}

	if *mintToken {
		if *cluster == "" {
			return fmt.Errorf("-mint-token needs -cluster FILE")
		}
		cc, err := netrt.LoadCluster(*cluster)
		if err != nil {
			return err
		}
		cc = overrideTransport(cc, *transport, *secret)
		blob, err := mintTokenBlob(cc, *id, *ttl)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, blob)
		return nil
	}

	switch *role {
	case "demo":
		return runDemo(out, *seed, *timeout, *health, *transport, *secret)
	case "hub", "mss", "mh":
		if *cluster == "" {
			return fmt.Errorf("-role %s needs -cluster FILE", *role)
		}
		cc, err := netrt.LoadCluster(*cluster)
		if err != nil {
			return err
		}
		cc = overrideTransport(applyEnv(cc), *transport, *secret)
		switch *role {
		case "hub":
			return runHub(out, cc, *seed, *timeout, *health)
		case "mss":
			name := fmt.Sprintf("mss%d", *id)
			start := func() (process, error) {
				return netrt.StartNode(netrt.NodeConfig{ID: *id, Cluster: cc})
			}
			if *supervise {
				return superviseProcess(out, name, *health, start)
			}
			node, err := netrt.StartNode(netrt.NodeConfig{ID: *id, Cluster: cc})
			if err != nil {
				return err
			}
			stopHealth, err := serveHealth(out, *health, node.HealthHandler())
			if err != nil {
				node.Stop()
				return err
			}
			defer stopHealth()
			fmt.Fprintf(out, "%s relaying on %s\n", name, node.Addr())
			node.Wait()
			return nil
		default:
			name := fmt.Sprintf("mh%d", *id)
			var token []byte
			if *token64 != "" {
				token, err = base64.StdEncoding.DecodeString(*token64)
				if err != nil {
					return fmt.Errorf("-token is not valid base64: %w", err)
				}
			}
			start := func() (process, error) {
				return netrt.StartClient(netrt.ClientConfig{ID: *id, Cluster: cc, Token: token})
			}
			if *supervise {
				return superviseProcess(out, name, *health, start)
			}
			client, err := netrt.StartClient(netrt.ClientConfig{ID: *id, Cluster: cc, Token: token})
			if err != nil {
				return err
			}
			stopHealth, err := serveHealth(out, *health, client.HealthHandler())
			if err != nil {
				client.Stop()
				return err
			}
			defer stopHealth()
			fmt.Fprintf(out, "%s on the wireless tier\n", name)
			client.Wait()
			return nil
		}
	default:
		return fmt.Errorf("unknown role %q (want demo, hub, mss, or mh)", *role)
	}
}

// overrideTransport applies the -transport/-secret flag overrides to a
// loaded cluster file. Empty flags keep the file's values.
func overrideTransport(cc netrt.ClusterConfig, transport, secret string) netrt.ClusterConfig {
	if transport != "" {
		cc.Transport = transport
	}
	if secret != "" {
		cc.Secret = secret
	}
	return cc
}

// mintTokenBlob mints a UDP connect token for MH id under the cluster's
// secret, bound to every dialable address in the file (the hub and all
// stations, so the credential survives handoffs), and returns the
// out-of-band blob — base64 of token || session key.
func mintTokenBlob(cc netrt.ClusterConfig, id int, ttl time.Duration) (string, error) {
	sec := cc.Secret
	if sec == "" {
		sec = netrt.DefaultSecret
	}
	addrs := append([]string{cc.Hub}, cc.MSS...)
	token, key, err := dgram.Mint([]byte(sec), dgram.TokenInfo{
		Role:   byte(wire.RoleMH),
		ID:     int64(id),
		Expiry: time.Now().Add(ttl),
		Addrs:  addrs,
	})
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(append(token, key...)), nil
}

// applyEnv overlays the MOBILEDIST_* environment overrides on a loaded
// cluster file, so operators can tune liveness cadence and reconnect pacing
// per process without editing the shared file.
func applyEnv(cc netrt.ClusterConfig) netrt.ClusterConfig {
	if v, ok := envInt64("MOBILEDIST_HEARTBEAT_MS"); ok {
		cc.HeartbeatMS = v
	}
	if v, ok := envInt64("MOBILEDIST_DIAL_BACKOFF_MIN_MS"); ok {
		cc.DialBackoffMinMS = v
	}
	if v, ok := envInt64("MOBILEDIST_DIAL_BACKOFF_MAX_MS"); ok {
		cc.DialBackoffMaxMS = v
	}
	return cc
}

func envInt64(key string) (int64, bool) {
	s := os.Getenv(key)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// serveHealth serves h on addr (no-op when addr is empty), returning a stop
// function.
func serveHealth(out io.Writer, addr string, h http.Handler) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("health listener: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	fmt.Fprintf(out, "health endpoint on http://%s/health\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// process is one supervisable cluster incarnation (a relay node or an MH
// client).
type process interface {
	Wait()
	SaidBye() bool
	Stop()
	HealthHandler() http.Handler
}

// Supervision backoff: restarts pace up from min to cap; an incarnation
// that stays up past resetAfter earns the next crash a fresh minimum.
const (
	superviseBackoffMin   = 250 * time.Millisecond
	superviseBackoffMax   = 5 * time.Second
	superviseResetAfter   = 10 * time.Second
	superviseHealthUnavail = `{"status":"restarting"}` + "\n"
)

// superviseProcess keeps one incarnation of the role running: when it dies
// for any reason other than the hub's orderly TBye, a fresh one is started
// after a capped backoff. The health endpoint (when configured) outlives
// every incarnation, answering 503 between them.
func superviseProcess(out io.Writer, name, health string, start func() (process, error)) error {
	var cur atomic.Value // process of the live incarnation
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p, ok := cur.Load().(process); ok && p != nil {
			p.HealthHandler().ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, superviseHealthUnavail)
	})
	stopHealth, err := serveHealth(out, health, handler)
	if err != nil {
		return err
	}
	defer stopHealth()

	backoff := superviseBackoffMin
	for attempt := 1; ; attempt++ {
		p, err := start()
		if err != nil {
			fmt.Fprintf(out, "%s: start failed: %v (retry in %v)\n", name, err, backoff)
		} else {
			cur.Store(p)
			began := time.Now()
			fmt.Fprintf(out, "%s up (incarnation %d)\n", name, attempt)
			p.Wait()
			if p.SaidBye() {
				fmt.Fprintf(out, "%s: hub said goodbye; exiting\n", name)
				return nil
			}
			if time.Since(began) >= superviseResetAfter {
				backoff = superviseBackoffMin
			}
			fmt.Fprintf(out, "%s died; restarting in %v\n", name, backoff)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > superviseBackoffMax {
			backoff = superviseBackoffMax
		}
	}
}

// initCluster assigns sequential ports starting at base: hub first, then
// one per station.
func initCluster(m, n int, base string) (netrt.ClusterConfig, error) {
	var cc netrt.ClusterConfig
	if m < 1 || n < 1 {
		return cc, fmt.Errorf("need -m >= 1 and -n >= 1 (got %d, %d)", m, n)
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return cc, fmt.Errorf("bad -base %q: want host:port", base)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return cc, fmt.Errorf("bad -base port %q", portStr)
	}
	cc.Hub = net.JoinHostPort(host, strconv.Itoa(port))
	cc.M, cc.N = m, n
	cc.MSS = make([]string, m)
	for i := range cc.MSS {
		cc.MSS[i] = net.JoinHostPort(host, strconv.Itoa(port+1+i))
	}
	return cc, nil
}

// hubHealthMux mounts the hub's health/status endpoints next to /metrics.
func hubHealthMux(sys *netrt.System) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", sys.HealthHandler())
	mux.Handle("/metrics", sys.MetricsHandler())
	return mux
}

// runHub hosts the engine for an externally launched cluster and drives the
// demo workload across it.
func runHub(out io.Writer, cc netrt.ClusterConfig, seed uint64, timeout time.Duration, health string) error {
	cfg := netrt.DefaultConfig(cc.M, cc.N)
	cfg.Seed = seed
	cfg.ListenAddr = cc.Hub
	cfg.MSSAddrs = cc.MSS
	if cc.TickUS > 0 {
		cfg.Tick = time.Duration(cc.TickUS) * time.Microsecond
	}
	if cc.HeartbeatMS != 0 {
		cfg.HeartbeatEvery = time.Duration(cc.HeartbeatMS) * time.Millisecond
	}
	cfg.DialBackoffMin = time.Duration(cc.DialBackoffMinMS) * time.Millisecond
	cfg.DialBackoffMax = time.Duration(cc.DialBackoffMaxMS) * time.Millisecond
	cfg.Transport = cc.Transport
	cfg.Secret = cc.Secret
	sys, err := netrt.NewSystem(cfg)
	if err != nil {
		return err
	}
	stopHealth, err := serveHealth(out, health, hubHealthMux(sys))
	if err != nil {
		sys.Stop()
		return err
	}
	defer stopHealth()
	fmt.Fprintf(out, "hub listening on %s; waiting for %d stations and %d hosts\n", sys.Addr(), cc.M, cc.N)
	return demoWorkload(out, sys, cc.M, cc.N, timeout)
}

// runDemo launches a full loopback cluster — 3 MSS relay nodes and 4 MH
// clients on 127.0.0.1 sockets — and drives the same workload.
func runDemo(out io.Writer, seed uint64, timeout time.Duration, health, transport, secret string) error {
	const m, n = 3, 4
	cfg := netrt.DefaultConfig(m, n)
	cfg.Seed = seed
	cfg.Transport = transport
	cfg.Secret = secret
	lb, err := netrt.StartLoopback(cfg)
	if err != nil {
		return err
	}
	defer lb.Stop()
	stopHealth, err := serveHealth(out, health, hubHealthMux(lb.Sys))
	if err != nil {
		return err
	}
	defer stopHealth()
	fmt.Fprintf(out, "loopback cluster: hub %s, %d MSS nodes, %d MH clients\n", lb.Sys.Addr(), m, n)
	return demoWorkload(out, lb.Sys, m, n, timeout)
}

// demoWorkload is the R2 token-ring run both hub and demo roles execute:
// every host requests the critical section, the token makes two traversals,
// and two hosts hand off between cells (leave/join) mid-run — then the
// cost/Stats table shows what crossing real links did (and did not) change.
func demoWorkload(out io.Writer, sys *netrt.System, m, n int, timeout time.Duration) error {
	defer sys.Stop()

	var grants int
	r2, err := ring.NewR2(sys, ring.VariantCounter, ring.Options{
		Hold: 2,
		OnEnter: func(mh core.MHID) {
			grants++
			fmt.Fprintf(out, "mh%-2d enters the critical section\n", int(mh))
		},
	}, 2, nil)
	if err != nil {
		return err
	}

	sys.Start()
	if !sys.WaitReady(timeout) {
		return fmt.Errorf("cluster did not become ready within %v", timeout)
	}
	fmt.Fprintf(out, "cluster ready: every station and host connected\n\n")

	sys.Do(func() {
		for i := 0; i < n; i++ {
			if err := r2.Request(core.MHID(i)); err != nil {
				fmt.Fprintln(out, "request:", err)
			}
		}
	})
	// Leave/join handoffs while requests are in flight: each move physically
	// re-dials the client's wireless connection to its new station. Targets
	// are one cell over from each host's round-robin starting cell.
	sys.Move(1, core.MSSID((1+1)%m))
	sys.Move(core.MHID(n-1), core.MSSID(((n-1)+1)%m))
	sys.Do(func() {
		if err := r2.Start(); err != nil {
			fmt.Fprintln(out, "start:", err)
		}
	})
	if !sys.WaitIdle(timeout) {
		return fmt.Errorf("network did not drain within %v", timeout)
	}

	var snapGrants int
	sys.Do(func() { snapGrants = grants })
	grants = snapGrants
	st := sys.Stats()
	cfgp := sys.Config().Params
	fmt.Fprintf(out, "\n%d grants over %s transport; %d searches performed\n",
		grants, strings.ToUpper(sys.Transport()), st.Searches)
	fmt.Fprintf(out, "moves=%d handoffs(leave/join)=%d disconnects=%d reconnects=%d\n",
		st.Moves, st.Moves, st.Disconnects, st.Reconnects)
	fmt.Fprint(out, sys.Meter().Report(cfgp))
	return nil
}
