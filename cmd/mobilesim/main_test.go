package main

import (
	"strings"
	"testing"
)

func TestRunEachAlgorithm(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "l1",
			args: []string{"-alg", "l1", "-m", "3", "-n", "5", "-requests", "1"},
			want: "L1: 5 grants",
		},
		{
			name: "l2 with mobility and churn",
			args: []string{"-alg", "l2", "-m", "4", "-n", "8", "-requests", "1", "-moves", "1", "-churn", "1"},
			want: "L2:",
		},
		{
			name: "r1",
			args: []string{"-alg", "r1", "-m", "3", "-n", "6", "-requests", "1", "-traversals", "3"},
			want: "R1:",
		},
		{
			name: "r2 counter",
			args: []string{"-alg", "r2c", "-m", "4", "-n", "8", "-requests", "1", "-traversals", "3"},
			want: "R2':",
		},
		{
			name: "r2 list",
			args: []string{"-alg", "r2l", "-m", "4", "-n", "8", "-requests", "1", "-traversals", "3"},
			want: "R2'':",
		},
		{
			name: "group pure search",
			args: []string{"-alg", "group-ps", "-m", "4", "-n", "8", "-group", "4", "-messages", "3"},
			want: "group/pure-search: 3 group messages sent, 9 member deliveries",
		},
		{
			name: "group location view",
			args: []string{"-alg", "group-lv", "-m", "4", "-n", "8", "-group", "4", "-messages", "3", "-moves", "1"},
			want: "group/location-view:",
		},
		{
			name: "multicast",
			args: []string{"-alg", "multicast", "-m", "4", "-n", "8", "-group", "4", "-messages", "3", "-moves", "2"},
			want: "multicast: 3 items, 12 deliveries",
		},
		{
			name: "proxy home",
			args: []string{"-alg", "proxy-home", "-m", "3", "-n", "4", "-requests", "1", "-moves", "2"},
			want: "proxy(home): 4 grants",
		},
		{
			name: "proxy local",
			args: []string{"-alg", "proxy-local", "-m", "3", "-n", "4", "-requests", "1", "-moves", "2"},
			want: "proxy(local): 4 grants",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			if !strings.Contains(out.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, out.String())
			}
			if !strings.Contains(out.String(), "total cost") {
				t.Errorf("output missing cost report:\n%s", out.String())
			}
		})
	}
}

func TestRunTraceFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "l2", "-m", "3", "-n", "4", "-moves", "1", "-trace"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "trace t=") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "nonsense"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-alg", "group-lv", "-n", "4", "-group", "10"}, &out); err == nil {
		t.Error("oversized group accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	runOnce := func() string {
		var out strings.Builder
		if err := run([]string{"-alg", "l2", "-m", "4", "-n", "8", "-requests", "2", "-moves", "2", "-seed", "77"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Error("identical seeds produced different reports")
	}
}
