// Command mobilesim runs one algorithm of the library on a synthetic
// two-tier mobile network and prints the resulting cost report.
//
// Usage:
//
//	mobilesim -alg l2 -m 8 -n 32 -requests 2 -moves 3
//	mobilesim -alg r2c -m 6 -n 30 -requests 1 -traversals 4
//	mobilesim -alg group-lv -m 10 -n 20 -group 10 -messages 20 -moves 2
//	mobilesim -alg proxy-home -m 6 -n 6 -moves 5
//
// Algorithms: l1, l2 (Lamport mutual exclusion on MHs / MSSs); r1, r2,
// r2c, r2l (token ring on MHs / MSSs plain, counter, list); group-ps,
// group-ai, group-lv (group communication strategies); multicast
// (exactly-once ordered feed); proxy-home, proxy-local (static Lamport
// mutex under the proxy framework).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobiledist"
)

type options struct {
	alg        string
	m, n       int
	seed       uint64
	requests   int
	moves      int
	hold       int64
	traversals int64
	groupSize  int
	messages   int
	churn      int
	trace      bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobilesim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.alg, "alg", "l2", "algorithm: l1|l2|r1|r2|r2c|r2l|group-ps|group-ai|group-lv|multicast|proxy-home|proxy-local")
	fs.IntVar(&o.m, "m", 8, "number of support stations (M)")
	fs.IntVar(&o.n, "n", 32, "number of mobile hosts (N)")
	fs.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.requests, "requests", 1, "critical-section requests per MH")
	fs.IntVar(&o.moves, "moves", 0, "cell switches per MH")
	fs.Int64Var(&o.hold, "hold", 10, "critical-section hold time (ticks)")
	fs.Int64Var(&o.traversals, "traversals", 2, "ring traversals before the token parks")
	fs.IntVar(&o.groupSize, "group", 8, "group size for group-* algorithms")
	fs.IntVar(&o.messages, "messages", 10, "group messages for group-* algorithms")
	fs.IntVar(&o.churn, "churn", 0, "disconnect/reconnect cycles per MH")
	fs.BoolVar(&o.trace, "trace", false, "print model-level protocol events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := mobiledist.NewSystem(func() mobiledist.Config {
		cfg := mobiledist.DefaultConfig(o.m, o.n)
		cfg.Seed = o.seed
		if o.trace {
			cfg.Trace = func(t mobiledist.Time, event, detail string) {
				fmt.Fprintf(out, "trace t=%-8d %-17s %s\n", int64(t), event, detail)
			}
		}
		return cfg
	}())
	if err != nil {
		return err
	}

	summary, err := install(sys, o)
	if err != nil {
		return err
	}
	if o.moves > 0 {
		if _, err := mobiledist.NewMobility(sys, mobiledist.MobilityConfig{
			Interval:   mobiledist.Span{Min: 200, Max: 800},
			MovesPerMH: o.moves,
			Locality:   0.5,
			Start:      50,
		}); err != nil {
			return err
		}
	}
	if o.churn > 0 {
		if _, err := mobiledist.NewChurn(sys, mobiledist.ChurnConfig{
			UpFor:     mobiledist.Span{Min: 500, Max: 2_000},
			DownFor:   mobiledist.Span{Min: 200, Max: 800},
			Cycles:    o.churn,
			KnowsPrev: true,
		}); err != nil {
			return err
		}
	}
	if err := sys.Run(); err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm %s on M=%d MSSs, N=%d MHs (seed %d)\n\n", o.alg, o.m, o.n, o.seed)
	fmt.Fprint(out, sys.Meter().Report(sys.Config().Params))
	stats := sys.Stats()
	fmt.Fprintf(out, "\nmodel: %d searches, %d stale re-routes, %d moves, %d disconnects, %d reconnects\n",
		stats.Searches, stats.StaleReroutes, stats.Moves, stats.Disconnects, stats.Reconnects)
	fmt.Fprintln(out, summary())
	return nil
}

// install wires the selected algorithm into sys and returns a closure
// rendering its post-run summary.
func install(sys *mobiledist.System, o options) (func() string, error) {
	requestAll := func(issue func(mobiledist.MHID) error) error {
		_, err := mobiledist.NewRequests(sys, mobiledist.RequestConfig{
			Interval:      mobiledist.Span{Min: 100, Max: 400},
			RequestsPerMH: o.requests,
			Start:         10,
		}, issue)
		return err
	}

	switch o.alg {
	case "l1":
		l1, err := mobiledist.NewL1(sys, mobiledist.AllMHs(o.n), mobiledist.MutexOptions{Hold: mobiledist.Time(o.hold)})
		if err != nil {
			return nil, err
		}
		if err := requestAll(l1.Request); err != nil {
			return nil, err
		}
		return func() string { return fmt.Sprintf("L1: %d grants", l1.Grants()) }, nil

	case "l2":
		l2 := mobiledist.NewL2(sys, mobiledist.MutexOptions{Hold: mobiledist.Time(o.hold)})
		if err := requestAll(l2.Request); err != nil {
			return nil, err
		}
		return func() string {
			return fmt.Sprintf("L2: %d grants, %d aborted (requester disconnected)", l2.Grants(), l2.FailedGrants())
		}, nil

	case "r1":
		r1, err := mobiledist.NewR1(sys, mobiledist.AllMHs(o.n), mobiledist.RingOptions{Hold: mobiledist.Time(o.hold)}, true, o.traversals)
		if err != nil {
			return nil, err
		}
		if err := requestAll(r1.Request); err != nil {
			return nil, err
		}
		if err := r1.Start(); err != nil {
			return nil, err
		}
		return func() string {
			return fmt.Sprintf("R1: %d grants in %d traversals (%d hops, stalled=%v)",
				r1.Grants(), r1.Traversals(), r1.Hops(), r1.Stalled())
		}, nil

	case "r2", "r2c", "r2l":
		variant := mobiledist.R2Plain
		switch o.alg {
		case "r2c":
			variant = mobiledist.R2Counter
		case "r2l":
			variant = mobiledist.R2List
		}
		r2, err := mobiledist.NewR2(sys, variant, mobiledist.RingOptions{Hold: mobiledist.Time(o.hold)}, o.traversals, nil)
		if err != nil {
			return nil, err
		}
		if err := requestAll(r2.Request); err != nil {
			return nil, err
		}
		sys.Schedule(500, func() {
			if err := r2.Start(); err != nil {
				fmt.Fprintln(os.Stderr, "mobilesim:", err)
			}
		})
		return func() string {
			return fmt.Sprintf("%s: %d grants in %d traversals (per traversal: %v)",
				variant, r2.Grants(), r2.Traversals(), r2.GrantsPerTraversal())
		}, nil

	case "group-ps", "group-ai", "group-lv":
		if o.groupSize > o.n {
			return nil, fmt.Errorf("group size %d exceeds N=%d", o.groupSize, o.n)
		}
		members := mobiledist.AllMHs(o.groupSize)
		var comm mobiledist.GroupComm
		var err error
		switch o.alg {
		case "group-ps":
			comm, err = mobiledist.NewPureSearch(sys, members, mobiledist.GroupOptions{})
		case "group-ai":
			comm, err = mobiledist.NewAlwaysInform(sys, members, mobiledist.GroupOptions{})
		case "group-lv":
			comm, err = mobiledist.NewLocationView(sys, members, mobiledist.LocationViewOptions{
				Coordinator:   mobiledist.MSSID(o.m - 1),
				CombineWindow: 200,
			})
		}
		if err != nil {
			return nil, err
		}
		if _, err := mobiledist.NewTraffic(sys, mobiledist.TrafficConfig{
			Senders:  members,
			Interval: mobiledist.Span{Min: 500, Max: 1_500},
			Messages: o.messages,
			Start:    100,
		}, func(mh mobiledist.MHID, payload any) error { return comm.Send(mh, payload) }); err != nil {
			return nil, err
		}
		return func() string {
			return fmt.Sprintf("%s: %d group messages sent, %d member deliveries", comm.Name(), comm.Sent(), comm.Delivered())
		}, nil

	case "multicast":
		if o.groupSize > o.n {
			return nil, fmt.Errorf("group size %d exceeds N=%d", o.groupSize, o.n)
		}
		members := mobiledist.AllMHs(o.groupSize)
		mc, err := mobiledist.NewMulticast(sys, members, mobiledist.MulticastOptions{
			Sequencer: mobiledist.MSSID(o.m - 1),
		})
		if err != nil {
			return nil, err
		}
		if _, err := mobiledist.NewTraffic(sys, mobiledist.TrafficConfig{
			Senders:  members,
			Interval: mobiledist.Span{Min: 500, Max: 1_500},
			Messages: o.messages,
			Start:    100,
		}, func(mh mobiledist.MHID, payload any) error { return mc.Publish(mh, payload) }); err != nil {
			return nil, err
		}
		return func() string {
			return fmt.Sprintf("multicast: %d items, %d deliveries, %d handoffs, %d rollbacks, %d duplicates filtered",
				mc.Published(), mc.Delivered(), mc.Handoffs(), mc.Rollbacks(), mc.DuplicatesDropped())
		}, nil

	case "proxy-home", "proxy-local":
		scope := mobiledist.ScopeHome
		if o.alg == "proxy-local" {
			scope = mobiledist.ScopeLocal
		}
		sm, err := mobiledist.NewStaticMutex(o.n, mobiledist.StaticMutexOptions{Hold: mobiledist.Time(o.hold)})
		if err != nil {
			return nil, err
		}
		rt, err := mobiledist.NewProxyRuntime(sys, sm, mobiledist.AllMHs(o.n), mobiledist.ProxyOptions{Scope: scope})
		if err != nil {
			return nil, err
		}
		if err := requestAll(func(mh mobiledist.MHID) error {
			return rt.Input(mh, mobiledist.ProxyRequestInput())
		}); err != nil {
			return nil, err
		}
		return func() string {
			return fmt.Sprintf("proxy(%v): %d grants, %d move reports, %d handoffs, %d outputs",
				scope, sm.Grants(), rt.MoveReports(), rt.Handoffs(), rt.Outputs())
		}, nil

	default:
		return nil, fmt.Errorf("unknown algorithm %q", o.alg)
	}
}
