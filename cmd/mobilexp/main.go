// Command mobilexp regenerates the paper's evaluation tables (experiments
// E1–E11 and ablations A1–A2; see DESIGN.md for the index).
//
// Usage:
//
//	mobilexp [-seed N] [-id E4] [-markdown] [-o FILE] [-parallel W]
//
// Without -id every experiment runs in index order, generated on up to
// -parallel worker goroutines (default: one per CPU); the tables are
// byte-identical to a sequential run regardless of worker count. With
// -markdown the output is GitHub-flavoured markdown (the format
// EXPERIMENTS.md embeds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"mobiledist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobilexp", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "simulation seed")
		id       = fs.String("id", "", "run a single experiment (E1..E11, A1, A2)")
		markdown = fs.Bool("markdown", false, "emit GitHub-flavoured markdown")
		outPath  = fs.String("o", "", "write output to FILE instead of stdout")
		verify   = fs.Int("verify", 0, "instead of tables, sweep every experiment across N seeds and report whether paper == measured held")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker goroutines for the full suite (output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tables []mobiledist.ExperimentTable
	switch {
	case *verify > 0:
		tables = []mobiledist.ExperimentTable{mobiledist.VerifyExperiments(*verify)}
	case *id != "":
		t, ok := mobiledist.ExperimentByID(*id, *seed)
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", *id, strings.Join(mobiledist.ExperimentIDs(), ", "))
		}
		tables = []mobiledist.ExperimentTable{t}
	default:
		tables = mobiledist.AllExperimentsParallel(*seed, *parallel)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	for _, t := range tables {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Format())
		}
	}
	return nil
}
