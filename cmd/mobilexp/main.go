// Command mobilexp regenerates the paper's evaluation tables (experiments
// E1–E11 and ablations A1–A2; see DESIGN.md for the index).
//
// Usage:
//
//	mobilexp [-seed N] [-id E4] [-markdown] [-o FILE] [-parallel W]
//	         [-drop P] [-dup P] [-reorder P] [-flap MSS:FROM:UNTIL,...]
//	         [-crash MSS:AT:RESTART,...] [-faultseed N]
//	         [-trace FILE] [-bench-json FILE]
//
// Without -id every experiment runs in index order, generated on up to
// -parallel worker goroutines (default: one per CPU); the tables are
// byte-identical to a sequential run regardless of worker count. With
// -markdown the output is GitHub-flavoured markdown (the format
// EXPERIMENTS.md embeds).
//
// -trace FILE captures the full observability event stream (internal/obs)
// of the run as JSONL, inspectable and diffable with cmd/mobiletrace.
// Tracing forces sequential generation so the captured stream is a pure
// function of the seed: two runs with the same seed and flags produce
// byte-identical trace files.
//
// -bench-json FILE writes a machine-readable benchmark snapshot (schema
// mobiledist-bench/v1): per-experiment wall-clock generation times plus
// the platform triple, for tracking the suite's performance trajectory.
// Timing forces sequential generation so experiments don't contend.
//
// The fault flags build a deterministic fault plan (see internal/faults)
// and install it process-wide, so every experiment regenerates under the
// same unreliable-wireless weather — the engine's ARQ sublayer preserves
// delivery guarantees, so the protocol outcomes still hold — and the F1
// table of fault/recovery counters is appended to the suite. Without fault
// flags no plan is installed and the output is byte-identical to earlier
// releases.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mobiledist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobilexp", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "simulation seed")
		id       = fs.String("id", "", "run a single experiment (E1..E11, A1, A2)")
		markdown = fs.Bool("markdown", false, "emit GitHub-flavoured markdown")
		outPath  = fs.String("o", "", "write output to FILE instead of stdout")
		verify   = fs.Int("verify", 0, "instead of tables, sweep every experiment across N seeds and report whether paper == measured held")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker goroutines for the full suite (output is identical for any value)")

		tracePath = fs.String("trace", "", "capture the observability event stream to FILE as JSONL (forces sequential generation)")
		benchJSON = fs.String("bench-json", "", "write a mobiledist-bench/v1 timing snapshot to FILE (forces sequential generation)")

		drop      = fs.Float64("drop", 0, "wireless drop probability per transmission, both directions [0,1]")
		dup       = fs.Float64("dup", 0, "wireless duplicate probability per transmission, both directions [0,1]")
		reorder   = fs.Float64("reorder", 0, "wireless reorder probability per transmission, both directions [0,1]")
		flaps     = fs.String("flap", "", "cell outages as MSS:FROM:UNTIL[,...] (darkens that cell's downlinks for the window)")
		crashes   = fs.String("crash", "", "station failures as MSS:AT:RESTART[,...] (RESTART 0 = never restarts)")
		faultseed = fs.Uint64("faultseed", 1, "seed for the fault plan's probabilistic decisions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plan, err := buildFaultPlan(*drop, *dup, *reorder, *flaps, *crashes, *faultseed)
	if err != nil {
		return err
	}
	if plan != nil {
		// Loss, duplication, reordering and flaps are absorbed by the
		// engine's ARQ sublayer, so every experiment (and the -verify
		// sweep) still holds under them. A crashed station, however, is
		// outside most algorithms' failure model: only F1 arms token
		// recovery, so crash plans are restricted to single-experiment
		// runs.
		if len(plan.Crashes) > 0 && *id == "" {
			return fmt.Errorf("-crash requires -id (try -id F1: the other experiments' algorithms assume live stations)")
		}
		mobiledist.SetDefaultFaultPlan(plan)
	}

	var tracer *mobiledist.Tracer
	if *tracePath != "" {
		tracer = mobiledist.NewTracer(0).WithMetrics(mobiledist.NewTraceMetrics())
		mobiledist.SetDefaultTracer(tracer)
		defer mobiledist.SetDefaultTracer(nil)
	}
	// A shared tracer interleaves events from concurrently-generated
	// experiments nondeterministically, and per-experiment timing is only
	// meaningful without contention: both flags force sequential runs.
	sequential := *tracePath != "" || *benchJSON != ""

	var bench []benchExperiment
	timedByID := func(eid string) (mobiledist.ExperimentTable, bool) {
		start := time.Now()
		t, ok := mobiledist.ExperimentByID(eid, *seed)
		if ok && *benchJSON != "" {
			bench = append(bench, benchExperiment{ID: t.ID, Title: t.Title, Millis: float64(time.Since(start)) / float64(time.Millisecond)})
		}
		return t, ok
	}

	var tables []mobiledist.ExperimentTable
	switch {
	case *verify > 0:
		tables = []mobiledist.ExperimentTable{mobiledist.VerifyExperiments(*verify)}
	case *id != "":
		t, ok := timedByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", *id, strings.Join(mobiledist.ExperimentIDs(), ", "))
		}
		tables = []mobiledist.ExperimentTable{t}
	case sequential:
		for _, eid := range mobiledist.ExperimentIDs() {
			t, _ := timedByID(eid)
			tables = append(tables, t)
		}
		if plan != nil {
			f1, _ := timedByID("F1")
			tables = append(tables, f1)
		}
	default:
		tables = mobiledist.AllExperimentsParallel(*seed, *parallel)
		if plan != nil {
			// Under a fault plan the suite gains the fault/recovery counter
			// table; fault-free runs stay byte-identical to earlier releases.
			f1, _ := mobiledist.ExperimentByID("F1", *seed)
			tables = append(tables, f1)
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	for _, t := range tables {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Format())
		}
	}

	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed, bench); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace exports the captured event stream as JSONL.
func writeTrace(path string, tracer *mobiledist.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.Snapshot().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchExperiment is one experiment's timing in the bench snapshot.
type benchExperiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Millis float64 `json:"ms"`
}

// benchSnapshot is the mobiledist-bench/v1 document -bench-json writes.
type benchSnapshot struct {
	Schema      string            `json:"schema"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	GoVersion   string            `json:"go"`
	Seed        uint64            `json:"seed"`
	TotalMillis float64           `json:"total_ms"`
	Experiments []benchExperiment `json:"experiments"`
}

func writeBenchJSON(path string, seed uint64, bench []benchExperiment) error {
	snap := benchSnapshot{
		Schema:      "mobiledist-bench/v1",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GoVersion:   runtime.Version(),
		Seed:        seed,
		Experiments: bench,
	}
	for _, b := range bench {
		snap.TotalMillis += b.Millis
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildFaultPlan turns the fault flags into a plan, or nil when every flag
// is at its fault-free default. Loss rates apply to both wireless channel
// classes; flap and crash windows are virtual-time ticks.
func buildFaultPlan(drop, dup, reorder float64, flaps, crashes string, seed uint64) (*mobiledist.FaultPlan, error) {
	loss := mobiledist.LinkFaults{Drop: drop, Duplicate: dup, Reorder: reorder}
	plan := mobiledist.FaultPlan{Seed: seed, Down: loss, Up: loss}
	for _, spec := range splitSpecs(flaps) {
		v, err := parseTriple("flap", spec)
		if err != nil {
			return nil, err
		}
		plan.Flaps = append(plan.Flaps, mobiledist.Flap{
			MSS:   mobiledist.MSSID(v[0]),
			From:  mobiledist.Time(v[1]),
			Until: mobiledist.Time(v[2]),
		})
	}
	for _, spec := range splitSpecs(crashes) {
		v, err := parseTriple("crash", spec)
		if err != nil {
			return nil, err
		}
		plan.Crashes = append(plan.Crashes, mobiledist.Crash{
			MSS:       mobiledist.MSSID(v[0]),
			At:        mobiledist.Time(v[1]),
			RestartAt: mobiledist.Time(v[2]),
		})
	}
	if plan.Empty() {
		return nil, nil
	}
	return &plan, nil
}

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parseTriple parses "a:b:c" into three non-negative integers.
func parseTriple(flagName, spec string) ([3]int64, error) {
	var out [3]int64
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return out, fmt.Errorf("-%s %q: want three colon-separated integers", flagName, spec)
	}
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return out, fmt.Errorf("-%s %q: bad field %q (want a non-negative integer)", flagName, spec, p)
		}
		out[i] = v
	}
	return out, nil
}
