// Command mobilexp regenerates the paper's evaluation tables (experiments
// E1–E11 and ablations A1–A2; see DESIGN.md for the index).
//
// Usage:
//
//	mobilexp [-seed N] [-id E4] [-markdown] [-o FILE] [-parallel W]
//	         [-drop P] [-dup P] [-reorder P] [-flap MSS:FROM:UNTIL,...]
//	         [-crash MSS:AT:RESTART,...] [-faultseed N]
//	         [-trace FILE] [-bench-json FILE] [-scale] [-scale-max N]
//	         [-scale-reps R] [-cpuprofile FILE] [-memprofile FILE]
//	         [-check-bench FILE [-delta PREV]]
//
// Without -id every experiment runs in index order, generated on up to
// -parallel worker goroutines (default: one per CPU); the tables are
// byte-identical to a sequential run regardless of worker count. With
// -markdown the output is GitHub-flavoured markdown (the format
// EXPERIMENTS.md embeds).
//
// -trace FILE captures the full observability event stream (internal/obs)
// of the run as JSONL, inspectable and diffable with cmd/mobiletrace.
// Tracing forces sequential generation so the captured stream is a pure
// function of the seed: two runs with the same seed and flags produce
// byte-identical trace files.
//
// -bench-json FILE writes a machine-readable benchmark snapshot (schema
// mobiledist-bench/v2): wall-clock timings plus platform, host, CPU count
// and VCS revision, for tracking the repo's performance trajectory. v2 is
// a strict superset of the v1 document — every v1 field keeps its name and
// meaning, so v1 readers still parse v2 snapshots. Timing forces
// sequential generation so experiments don't contend.
//
// -scale replaces the experiment tables with the million-host scale suite
// (internal/workload GenScale/RunScale): the route, churn and search-chase
// traffic shapes at N=10^4/10^5/10^6 mobile hosts, each on the single-heap
// and sharded kernels, reporting simulated msgs/sec and the
// sharded-vs-single speedup. -scale-max caps the largest N (e.g.
// -scale-max 100000 for a quick pass); -scale-reps R records the fastest
// of R repetitions per point, the standard defence against scheduler
// noise. Combined with -bench-json the runs are recorded in the
// snapshot's "scale" array — that is how the checked-in BENCH_scale.json
// trajectory is produced (via `make bench-scale`).
//
// -cpuprofile / -memprofile write pprof profiles covering the whole run
// (tables or scale suite), for digging into regressions the snapshots
// surface.
//
// -check-bench FILE validates a snapshot written by -bench-json (v1 or
// v2) and exits non-zero on malformed documents; CI runs it over the
// checked-in snapshots so schema drift is caught at the gate. Adding
// -delta PREV also compares FILE's scale results against the previous
// snapshot PREV, row-matched by (kind, N, shards): absolute msgs/sec
// ratios (host-dependent) and the sharded-vs-single kernel ratio (the
// number `make bench-delta` tracks across commits).
//
// The fault flags build a deterministic fault plan (see internal/faults)
// and install it process-wide, so every experiment regenerates under the
// same unreliable-wireless weather — the engine's ARQ sublayer preserves
// delivery guarantees, so the protocol outcomes still hold — and the F1
// table of fault/recovery counters is appended to the suite. Without fault
// flags no plan is installed and the output is byte-identical to earlier
// releases.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mobiledist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobilexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mobilexp", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "simulation seed")
		id       = fs.String("id", "", "run a single experiment (E1..E11, A1, A2)")
		markdown = fs.Bool("markdown", false, "emit GitHub-flavoured markdown")
		outPath  = fs.String("o", "", "write output to FILE instead of stdout")
		verify   = fs.Int("verify", 0, "instead of tables, sweep every experiment across N seeds and report whether paper == measured held")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker goroutines for the full suite (output is identical for any value)")

		tracePath = fs.String("trace", "", "capture the observability event stream to FILE as JSONL (forces sequential generation)")
		benchJSON = fs.String("bench-json", "", "write a mobiledist-bench/v2 timing snapshot to FILE (forces sequential generation)")

		scale      = fs.Bool("scale", false, "run the million-host scale suite instead of the experiment tables")
		scaleMax   = fs.Int("scale-max", 1_000_000, "largest host count N the scale suite runs")
		scaleReps  = fs.Int("scale-reps", 1, "repetitions per scale point; the fastest is recorded")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to FILE")
		memprofile = fs.String("memprofile", "", "write a heap profile taken at the end of the run to FILE")
		checkBench = fs.String("check-bench", "", "validate the bench snapshot in FILE (schema v1 or v2) and exit")
		deltaBench = fs.String("delta", "", "with -check-bench: compare the snapshot's scale results against the previous snapshot in FILE")

		drop      = fs.Float64("drop", 0, "wireless drop probability per transmission, both directions [0,1]")
		dup       = fs.Float64("dup", 0, "wireless duplicate probability per transmission, both directions [0,1]")
		reorder   = fs.Float64("reorder", 0, "wireless reorder probability per transmission, both directions [0,1]")
		flaps     = fs.String("flap", "", "cell outages as MSS:FROM:UNTIL[,...] (darkens that cell's downlinks for the window)")
		crashes   = fs.String("crash", "", "station failures as MSS:AT:RESTART[,...] (RESTART 0 = never restarts)")
		faultseed = fs.Uint64("faultseed", 1, "seed for the fault plan's probabilistic decisions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *checkBench != "" {
		if err := checkBenchFile(*checkBench); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: ok\n", *checkBench)
		if *deltaBench != "" {
			return reportBenchDelta(stdout, *checkBench, *deltaBench)
		}
		return nil
	}
	if *deltaBench != "" {
		return fmt.Errorf("-delta requires -check-bench (the snapshot to compare)")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Taken on the way out so it reflects what the run left live.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mobilexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mobilexp:", err)
			}
		}()
	}

	if *scale {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		runs, err := runScaleSuite(out, *seed, *scaleMax, *scaleReps)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			return writeBenchJSON(*benchJSON, *seed, nil, runs)
		}
		return nil
	}

	plan, err := buildFaultPlan(*drop, *dup, *reorder, *flaps, *crashes, *faultseed)
	if err != nil {
		return err
	}
	if plan != nil {
		// Loss, duplication, reordering and flaps are absorbed by the
		// engine's ARQ sublayer, so every experiment (and the -verify
		// sweep) still holds under them. A crashed station, however, is
		// outside most algorithms' failure model: only F1 arms token
		// recovery, so crash plans are restricted to single-experiment
		// runs.
		if len(plan.Crashes) > 0 && *id == "" {
			return fmt.Errorf("-crash requires -id (try -id F1: the other experiments' algorithms assume live stations)")
		}
		mobiledist.SetDefaultFaultPlan(plan)
	}

	var tracer *mobiledist.Tracer
	if *tracePath != "" {
		tracer = mobiledist.NewTracer(0).WithMetrics(mobiledist.NewTraceMetrics())
		mobiledist.SetDefaultTracer(tracer)
		defer mobiledist.SetDefaultTracer(nil)
	}
	// A shared tracer interleaves events from concurrently-generated
	// experiments nondeterministically, and per-experiment timing is only
	// meaningful without contention: both flags force sequential runs.
	sequential := *tracePath != "" || *benchJSON != ""

	var bench []benchExperiment
	timedByID := func(eid string) (mobiledist.ExperimentTable, bool) {
		start := time.Now()
		t, ok := mobiledist.ExperimentByID(eid, *seed)
		if ok && *benchJSON != "" {
			bench = append(bench, benchExperiment{ID: t.ID, Title: t.Title, Millis: float64(time.Since(start)) / float64(time.Millisecond)})
		}
		return t, ok
	}

	var tables []mobiledist.ExperimentTable
	switch {
	case *verify > 0:
		tables = []mobiledist.ExperimentTable{mobiledist.VerifyExperiments(*verify)}
	case *id != "":
		t, ok := timedByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", *id, strings.Join(mobiledist.ExperimentIDs(), ", "))
		}
		tables = []mobiledist.ExperimentTable{t}
	case sequential:
		for _, eid := range mobiledist.ExperimentIDs() {
			t, _ := timedByID(eid)
			tables = append(tables, t)
		}
		if plan != nil {
			f1, _ := timedByID("F1")
			tables = append(tables, f1)
		}
	default:
		tables = mobiledist.AllExperimentsParallel(*seed, *parallel)
		if plan != nil {
			// Under a fault plan the suite gains the fault/recovery counter
			// table; fault-free runs stay byte-identical to earlier releases.
			f1, _ := mobiledist.ExperimentByID("F1", *seed)
			tables = append(tables, f1)
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	for _, t := range tables {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.Format())
		}
	}

	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed, bench, nil); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace exports the captured event stream as JSONL.
func writeTrace(path string, tracer *mobiledist.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.Snapshot().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Bench snapshot schema identifiers. v2 is a strict superset of v1: every
// v1 field keeps its JSON name and meaning, and v2 adds host/cpus/commit
// metadata plus the optional "scale" results array, so a v1 reader parses a
// v2 document (minus the fields it doesn't know) and this binary reads both.
const (
	benchSchemaV1 = "mobiledist-bench/v1"
	benchSchemaV2 = "mobiledist-bench/v2"
)

// benchExperiment is one experiment's timing in the bench snapshot.
type benchExperiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Millis float64 `json:"ms"`
}

// benchScaleRun is one scale-suite run in the bench snapshot: a traffic
// shape at a population size on one kernel configuration.
type benchScaleRun struct {
	Kind         string  `json:"kind"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	Ops          int     `json:"ops"`
	Shards       int     `json:"shards"`
	Millis       float64 `json:"ms"`
	Messages     int64   `json:"messages"`
	Steps        uint64  `json:"steps"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is msgs/sec relative to the shards=1 run of the same
	// (kind, n) pair; set only on sharded rows.
	Speedup float64 `json:"speedup,omitempty"`
}

// benchSnapshot is the mobiledist-bench/v2 document -bench-json writes.
type benchSnapshot struct {
	Schema      string            `json:"schema"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	GoVersion   string            `json:"go"`
	Host        string            `json:"host,omitempty"`
	CPUs        int               `json:"cpus,omitempty"`
	Commit      string            `json:"commit,omitempty"`
	Seed        uint64            `json:"seed"`
	TotalMillis float64           `json:"total_ms"`
	Experiments []benchExperiment `json:"experiments,omitempty"`
	Scale       []benchScaleRun   `json:"scale,omitempty"`
}

// vcsRevision reports the commit the binary was built from, when the
// toolchain stamped one (go build from a clean checkout; `go run` and test
// binaries usually carry none).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

func writeBenchJSON(path string, seed uint64, bench []benchExperiment, scale []benchScaleRun) error {
	host, _ := os.Hostname()
	snap := benchSnapshot{
		Schema:      benchSchemaV2,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GoVersion:   runtime.Version(),
		Host:        host,
		CPUs:        runtime.NumCPU(),
		Commit:      vcsRevision(),
		Seed:        seed,
		Experiments: bench,
		Scale:       scale,
	}
	for _, b := range bench {
		snap.TotalMillis += b.Millis
	}
	for _, s := range scale {
		snap.TotalMillis += s.Millis
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readBenchFile loads and decodes a snapshot written by -bench-json.
func readBenchFile(path string) (benchSnapshot, error) {
	var snap benchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

// reportBenchDelta compares the scale results of the snapshot at curPath
// against the previous snapshot at prevPath, matching rows by
// (kind, n, shards). The interesting column is the kernel ratio: the
// sharded rows' speedup relative to the single-heap baseline, whose
// trajectory across snapshots is what `make bench-delta` watches. The
// report is informational — wall clocks shift with the host — so the only
// errors are unreadable snapshots.
func reportBenchDelta(out io.Writer, curPath, prevPath string) error {
	cur, err := readBenchFile(curPath)
	if err != nil {
		return err
	}
	prev, err := readBenchFile(prevPath)
	if err != nil {
		return err
	}
	type key struct {
		kind   string
		n      int
		shards int
	}
	prevRows := make(map[key]benchScaleRun, len(prev.Scale))
	for _, r := range prev.Scale {
		prevRows[key{r.Kind, r.N, r.Shards}] = r
	}
	fmt.Fprintf(out, "delta %s (commit %.12s) vs %s (commit %.12s)\n", curPath, cur.Commit, prevPath, prev.Commit)
	matched := 0
	for _, r := range cur.Scale {
		p, ok := prevRows[key{r.Kind, r.N, r.Shards}]
		if !ok {
			fmt.Fprintf(out, "  %-12s N=%-8d shards=%-4d (no previous row)\n", r.Kind, r.N, r.Shards)
			continue
		}
		matched++
		line := fmt.Sprintf("  %-12s N=%-8d shards=%-4d %11.0f msgs/sec (x%.2f vs prev)",
			r.Kind, r.N, r.Shards, r.MsgsPerSec, ratio(r.MsgsPerSec, p.MsgsPerSec))
		if r.Speedup != 0 && p.Speedup != 0 {
			line += fmt.Sprintf("  kernel-ratio %.3f vs %.3f (%+.1f%%)",
				r.Speedup, p.Speedup, 100*(r.Speedup-p.Speedup)/p.Speedup)
		}
		fmt.Fprintln(out, line)
	}
	if len(cur.Experiments) > 0 && len(prev.Experiments) > 0 {
		fmt.Fprintf(out, "  experiment suite %.1f ms vs %.1f ms (x%.2f)\n",
			cur.TotalMillis, prev.TotalMillis, ratio(cur.TotalMillis, prev.TotalMillis))
	}
	if matched == 0 && len(cur.Scale) == 0 {
		fmt.Fprintln(out, "  (no scale rows to compare)")
	}
	return nil
}

func ratio(cur, prev float64) float64 {
	if prev == 0 {
		return 0
	}
	return cur / prev
}

// checkBenchFile validates a snapshot written by -bench-json, accepting
// both schema versions.
func checkBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...))
	}
	switch snap.Schema {
	case benchSchemaV1:
		if len(snap.Scale) > 0 {
			return bad("scale results require schema %s", benchSchemaV2)
		}
	case benchSchemaV2:
	default:
		return bad("unknown schema %q (want %s or %s)", snap.Schema, benchSchemaV1, benchSchemaV2)
	}
	if snap.GOOS == "" || snap.GOARCH == "" || snap.GoVersion == "" {
		return bad("missing platform triple")
	}
	if len(snap.Experiments) == 0 && len(snap.Scale) == 0 {
		return bad("no experiment or scale results")
	}
	var total float64
	for i, e := range snap.Experiments {
		if e.ID == "" {
			return bad("experiment %d: empty id", i)
		}
		if e.Millis < 0 {
			return bad("experiment %s: negative ms", e.ID)
		}
		total += e.Millis
	}
	for i, s := range snap.Scale {
		name := fmt.Sprintf("scale %d (%s N=%d shards=%d)", i, s.Kind, s.N, s.Shards)
		if s.Kind == "" {
			return bad("%s: empty kind", name)
		}
		if s.N < 1 || s.M < 1 || s.Ops < 1 || s.Shards < 1 {
			return bad("%s: non-positive dimension", name)
		}
		if s.Millis <= 0 || s.MsgsPerSec <= 0 || s.EventsPerSec <= 0 {
			return bad("%s: non-positive timing", name)
		}
		if s.Messages < 1 || s.Steps < 1 {
			return bad("%s: empty run", name)
		}
		total += s.Millis
	}
	// TotalMillis is the sum of the parts; allow float slack.
	if diff := snap.TotalMillis - total; diff > 1 || diff < -1 {
		return bad("total_ms %.1f does not match sum of parts %.1f", snap.TotalMillis, total)
	}
	return nil
}

// buildFaultPlan turns the fault flags into a plan, or nil when every flag
// is at its fault-free default. Loss rates apply to both wireless channel
// classes; flap and crash windows are virtual-time ticks.
func buildFaultPlan(drop, dup, reorder float64, flaps, crashes string, seed uint64) (*mobiledist.FaultPlan, error) {
	loss := mobiledist.LinkFaults{Drop: drop, Duplicate: dup, Reorder: reorder}
	plan := mobiledist.FaultPlan{Seed: seed, Down: loss, Up: loss}
	for _, spec := range splitSpecs(flaps) {
		v, err := parseTriple("flap", spec)
		if err != nil {
			return nil, err
		}
		plan.Flaps = append(plan.Flaps, mobiledist.Flap{
			MSS:   mobiledist.MSSID(v[0]),
			From:  mobiledist.Time(v[1]),
			Until: mobiledist.Time(v[2]),
		})
	}
	for _, spec := range splitSpecs(crashes) {
		v, err := parseTriple("crash", spec)
		if err != nil {
			return nil, err
		}
		plan.Crashes = append(plan.Crashes, mobiledist.Crash{
			MSS:       mobiledist.MSSID(v[0]),
			At:        mobiledist.Time(v[1]),
			RestartAt: mobiledist.Time(v[2]),
		})
	}
	if plan.Empty() {
		return nil, nil
	}
	return &plan, nil
}

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parseTriple parses "a:b:c" into three non-negative integers.
func parseTriple(flagName, spec string) ([3]int64, error) {
	var out [3]int64
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return out, fmt.Errorf("-%s %q: want three colon-separated integers", flagName, spec)
	}
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return out, fmt.Errorf("-%s %q: bad field %q (want a non-negative integer)", flagName, spec, p)
		}
		out[i] = v
	}
	return out, nil
}
