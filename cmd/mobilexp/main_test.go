package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiledist"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-seed", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E10") || !strings.Contains(text, "location view") {
		t.Errorf("output missing expected content:\n%s", text)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "A1", "-markdown"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "### A1") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.txt")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-o", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(data), "E10") {
		t.Errorf("file content missing table:\n%s", data)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty when -o used: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// resetFaultPlan restores the process-wide fault-free default after a test
// that runs with fault flags (run installs the plan globally).
func resetFaultPlan(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { mobiledist.SetDefaultFaultPlan(nil) })
}

func TestRunNoFaultFlagsIsByteIdentical(t *testing.T) {
	resetFaultPlan(t)
	var plain, zeroed strings.Builder
	if err := run([]string{"-seed", "3"}, &plain); err != nil {
		t.Fatalf("run: %v", err)
	}
	// All-zero fault flags build no plan, so the suite must not change at
	// all: same tables, same bytes, no F1 appended.
	if err := run([]string{"-seed", "3", "-drop", "0", "-dup", "0", "-reorder", "0", "-faultseed", "9"}, &zeroed); err != nil {
		t.Fatalf("run with zero fault flags: %v", err)
	}
	if plain.String() != zeroed.String() {
		t.Error("zero-valued fault flags changed the suite output")
	}
	if strings.Contains(plain.String(), "F1 —") {
		t.Error("fault-free suite contains the F1 fault table")
	}
	if mobiledist.DefaultFaultPlan() != nil {
		t.Error("fault-free run installed a default fault plan")
	}
}

func TestRunLossPlanAppendsF1(t *testing.T) {
	resetFaultPlan(t)
	var out strings.Builder
	if err := run([]string{"-seed", "1", "-drop", "0.3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "F1 —") {
		t.Errorf("suite under loss is missing the F1 table:\n%s", text)
	}
	if !strings.Contains(text, "drop=0.30") {
		t.Errorf("F1 note does not describe the plan:\n%s", text)
	}
}

func TestRunCrashRequiresSingleExperiment(t *testing.T) {
	resetFaultPlan(t)
	var out strings.Builder
	if err := run([]string{"-crash", "2:1:2500"}, &out); err == nil {
		t.Error("crash plan accepted for the full suite")
	}
	out.Reset()
	if err := run([]string{"-id", "F1", "-crash", "2:1:2500"}, &out); err != nil {
		t.Fatalf("run -id F1 -crash: %v", err)
	}
	if !strings.Contains(out.String(), "token recovery armed") {
		t.Errorf("F1 under a crash plan did not arm recovery:\n%s", out.String())
	}
}

func TestRunTraceIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-seed", "4", "-trace", a}, &out); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if mobiledist.DefaultTracer() != nil {
		t.Error("run left the default tracer installed")
	}
	if err := run([]string{"-id", "E10", "-seed", "4", "-trace", b}, &out); err != nil {
		t.Fatalf("second run -trace: %v", err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(da) == 0 {
		t.Fatal("trace file is empty")
	}
	if !strings.HasPrefix(string(da), `{"trace":"mobiledist","v":1`) {
		t.Errorf("trace header malformed: %.80s", da)
	}
	if string(da) != string(db) {
		t.Error("two seeded runs produced different trace files")
	}
}

func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-bench-json", path}, &out); err != nil {
		t.Fatalf("run -bench-json: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("bench snapshot is not valid JSON: %v\n%s", err, data)
	}
	if snap.Schema != benchSchemaV2 {
		t.Errorf("schema = %q, want %s", snap.Schema, benchSchemaV2)
	}
	if len(snap.Experiments) != 1 || snap.Experiments[0].ID != "E10" || snap.Experiments[0].Millis <= 0 {
		t.Errorf("experiment timings malformed: %+v", snap.Experiments)
	}
	if snap.GOOS == "" || snap.GoVersion == "" {
		t.Errorf("platform fields missing: %+v", snap)
	}
	if snap.CPUs < 1 {
		t.Errorf("cpus = %d, want >= 1", snap.CPUs)
	}
	// The snapshot must pass its own validator (the -check-bench path).
	if err := checkBenchFile(path); err != nil {
		t.Errorf("checkBenchFile rejected a fresh snapshot: %v", err)
	}
	var check strings.Builder
	if err := run([]string{"-check-bench", path}, &check); err != nil {
		t.Fatalf("run -check-bench: %v", err)
	}
	if !strings.Contains(check.String(), "ok") {
		t.Errorf("-check-bench output missing ok: %q", check.String())
	}
}

// writeTestSnapshot marshals snap to a temp file and returns the path.
func writeTestSnapshot(t *testing.T, snap benchSnapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.json")
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckBenchFileRejectsMalformed(t *testing.T) {
	valid := benchSnapshot{
		Schema: benchSchemaV2, GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24",
		TotalMillis: 5,
		Experiments: []benchExperiment{{ID: "E1", Title: "t", Millis: 5}},
	}
	if err := checkBenchFile(writeTestSnapshot(t, valid)); err != nil {
		t.Errorf("valid v2 snapshot rejected: %v", err)
	}

	v1 := valid
	v1.Schema = benchSchemaV1
	if err := checkBenchFile(writeTestSnapshot(t, v1)); err != nil {
		t.Errorf("valid v1 snapshot rejected: %v", err)
	}

	cases := map[string]func(*benchSnapshot){
		"unknown schema":     func(s *benchSnapshot) { s.Schema = "mobiledist-bench/v9" },
		"missing platform":   func(s *benchSnapshot) { s.GOOS = "" },
		"no results":         func(s *benchSnapshot) { s.Experiments = nil; s.TotalMillis = 0 },
		"empty id":           func(s *benchSnapshot) { s.Experiments[0].ID = "" },
		"total mismatch":     func(s *benchSnapshot) { s.TotalMillis = 99 },
		"scale needs v2":     func(s *benchSnapshot) { s.Schema = benchSchemaV1; s.Scale = []benchScaleRun{{}} },
		"zero-dim scale run": func(s *benchSnapshot) { s.Scale = []benchScaleRun{{Kind: "route"}} },
	}
	for name, mutate := range cases {
		snap := valid
		snap.Experiments = []benchExperiment{valid.Experiments[0]}
		mutate(&snap)
		if err := checkBenchFile(writeTestSnapshot(t, snap)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := checkBenchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunScaleSuiteRecordsSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("scale suite run skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "scale.json")
	cpu := filepath.Join(t.TempDir(), "cpu.prof")
	var out strings.Builder
	// Smallest trajectory point only (N=10^4), both kernels, all kinds.
	if err := run([]string{"-scale", "-scale-max", "10000", "-bench-json", path, "-cpuprofile", cpu}, &out); err != nil {
		t.Fatalf("run -scale: %v", err)
	}
	if err := checkBenchFile(path); err != nil {
		t.Fatalf("scale snapshot fails validation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Experiments) != 0 {
		t.Errorf("scale snapshot carries experiment timings: %+v", snap.Experiments)
	}
	// 3 kinds x 1 size x 2 kernels.
	if len(snap.Scale) != 6 {
		t.Fatalf("scale runs = %d, want 6", len(snap.Scale))
	}
	for i, s := range snap.Scale {
		if s.N != 10_000 || s.M != 100 {
			t.Errorf("run %d: unexpected size N=%d M=%d", i, s.N, s.M)
		}
		odd := i%2 == 1
		if odd && s.Speedup <= 0 {
			t.Errorf("run %d: sharded row missing speedup: %+v", i, s)
		}
		if !odd && s.Speedup != 0 {
			t.Errorf("run %d: single-heap row carries speedup: %+v", i, s)
		}
	}
	// Both kernels processed identical scenarios: messages and steps match
	// pairwise (the determinism contract, visible in the snapshot itself).
	for i := 0; i < len(snap.Scale); i += 2 {
		a, b := snap.Scale[i], snap.Scale[i+1]
		if a.Messages != b.Messages || a.Steps != b.Steps {
			t.Errorf("kernel pair %s diverged: %d/%d msgs, %d/%d steps",
				a.Kind, a.Messages, b.Messages, a.Steps, b.Steps)
		}
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}
}

func TestBuildFaultPlan(t *testing.T) {
	if p, err := buildFaultPlan(0, 0, 0, "", "", 7); err != nil || p != nil {
		t.Errorf("all-default flags: got plan %v, err %v; want nil, nil", p, err)
	}
	p, err := buildFaultPlan(0.1, 0.2, 0, "1:50:400,2:10:20", "3:5:0", 7)
	if err != nil {
		t.Fatalf("buildFaultPlan: %v", err)
	}
	if p.Seed != 7 || p.Down.Drop != 0.1 || p.Up.Duplicate != 0.2 {
		t.Errorf("loss rates not applied to both directions: %+v", p)
	}
	if len(p.Flaps) != 2 || p.Flaps[1].MSS != 2 || p.Flaps[1].From != 10 || p.Flaps[1].Until != 20 {
		t.Errorf("flap specs misparsed: %+v", p.Flaps)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (mobiledist.Crash{MSS: 3, At: 5, RestartAt: 0}) {
		t.Errorf("crash specs misparsed: %+v", p.Crashes)
	}
	for _, bad := range []string{"1:2", "a:b:c", "1:-2:3", "1:2:3:4"} {
		if _, err := buildFaultPlan(0, 0, 0, bad, "", 1); err == nil {
			t.Errorf("flap spec %q accepted", bad)
		}
	}
}
