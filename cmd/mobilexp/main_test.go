package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiledist"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-seed", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E10") || !strings.Contains(text, "location view") {
		t.Errorf("output missing expected content:\n%s", text)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "A1", "-markdown"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "### A1") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.txt")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-o", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(data), "E10") {
		t.Errorf("file content missing table:\n%s", data)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty when -o used: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// resetFaultPlan restores the process-wide fault-free default after a test
// that runs with fault flags (run installs the plan globally).
func resetFaultPlan(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { mobiledist.SetDefaultFaultPlan(nil) })
}

func TestRunNoFaultFlagsIsByteIdentical(t *testing.T) {
	resetFaultPlan(t)
	var plain, zeroed strings.Builder
	if err := run([]string{"-seed", "3"}, &plain); err != nil {
		t.Fatalf("run: %v", err)
	}
	// All-zero fault flags build no plan, so the suite must not change at
	// all: same tables, same bytes, no F1 appended.
	if err := run([]string{"-seed", "3", "-drop", "0", "-dup", "0", "-reorder", "0", "-faultseed", "9"}, &zeroed); err != nil {
		t.Fatalf("run with zero fault flags: %v", err)
	}
	if plain.String() != zeroed.String() {
		t.Error("zero-valued fault flags changed the suite output")
	}
	if strings.Contains(plain.String(), "F1 —") {
		t.Error("fault-free suite contains the F1 fault table")
	}
	if mobiledist.DefaultFaultPlan() != nil {
		t.Error("fault-free run installed a default fault plan")
	}
}

func TestRunLossPlanAppendsF1(t *testing.T) {
	resetFaultPlan(t)
	var out strings.Builder
	if err := run([]string{"-seed", "1", "-drop", "0.3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "F1 —") {
		t.Errorf("suite under loss is missing the F1 table:\n%s", text)
	}
	if !strings.Contains(text, "drop=0.30") {
		t.Errorf("F1 note does not describe the plan:\n%s", text)
	}
}

func TestRunCrashRequiresSingleExperiment(t *testing.T) {
	resetFaultPlan(t)
	var out strings.Builder
	if err := run([]string{"-crash", "2:1:2500"}, &out); err == nil {
		t.Error("crash plan accepted for the full suite")
	}
	out.Reset()
	if err := run([]string{"-id", "F1", "-crash", "2:1:2500"}, &out); err != nil {
		t.Fatalf("run -id F1 -crash: %v", err)
	}
	if !strings.Contains(out.String(), "token recovery armed") {
		t.Errorf("F1 under a crash plan did not arm recovery:\n%s", out.String())
	}
}

func TestRunTraceIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-seed", "4", "-trace", a}, &out); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if mobiledist.DefaultTracer() != nil {
		t.Error("run left the default tracer installed")
	}
	if err := run([]string{"-id", "E10", "-seed", "4", "-trace", b}, &out); err != nil {
		t.Fatalf("second run -trace: %v", err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(da) == 0 {
		t.Fatal("trace file is empty")
	}
	if !strings.HasPrefix(string(da), `{"trace":"mobiledist","v":1`) {
		t.Errorf("trace header malformed: %.80s", da)
	}
	if string(da) != string(db) {
		t.Error("two seeded runs produced different trace files")
	}
}

func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-bench-json", path}, &out); err != nil {
		t.Fatalf("run -bench-json: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("bench snapshot is not valid JSON: %v\n%s", err, data)
	}
	if snap.Schema != "mobiledist-bench/v1" {
		t.Errorf("schema = %q, want mobiledist-bench/v1", snap.Schema)
	}
	if len(snap.Experiments) != 1 || snap.Experiments[0].ID != "E10" || snap.Experiments[0].Millis <= 0 {
		t.Errorf("experiment timings malformed: %+v", snap.Experiments)
	}
	if snap.GOOS == "" || snap.GoVersion == "" {
		t.Errorf("platform fields missing: %+v", snap)
	}
}

func TestBuildFaultPlan(t *testing.T) {
	if p, err := buildFaultPlan(0, 0, 0, "", "", 7); err != nil || p != nil {
		t.Errorf("all-default flags: got plan %v, err %v; want nil, nil", p, err)
	}
	p, err := buildFaultPlan(0.1, 0.2, 0, "1:50:400,2:10:20", "3:5:0", 7)
	if err != nil {
		t.Fatalf("buildFaultPlan: %v", err)
	}
	if p.Seed != 7 || p.Down.Drop != 0.1 || p.Up.Duplicate != 0.2 {
		t.Errorf("loss rates not applied to both directions: %+v", p)
	}
	if len(p.Flaps) != 2 || p.Flaps[1].MSS != 2 || p.Flaps[1].From != 10 || p.Flaps[1].Until != 20 {
		t.Errorf("flap specs misparsed: %+v", p.Flaps)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (mobiledist.Crash{MSS: 3, At: 5, RestartAt: 0}) {
		t.Errorf("crash specs misparsed: %+v", p.Crashes)
	}
	for _, bad := range []string{"1:2", "a:b:c", "1:-2:3", "1:2:3:4"} {
		if _, err := buildFaultPlan(0, 0, 0, bad, "", 1); err == nil {
			t.Errorf("flap spec %q accepted", bad)
		}
	}
}
