package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-seed", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "E10") || !strings.Contains(text, "location view") {
		t.Errorf("output missing expected content:\n%s", text)
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "A1", "-markdown"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "### A1") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.txt")
	var out strings.Builder
	if err := run([]string{"-id", "E10", "-o", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(data), "E10") {
		t.Errorf("file content missing table:\n%s", data)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty when -o used: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
