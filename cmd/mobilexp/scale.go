package main

// The -scale mode: the recorded million-host perf trajectory. It runs the
// same pre-generated scenarios as the root BenchmarkScale* suite (see
// bench_test.go), but as a plain sequential driver that prints one line per
// run and, with -bench-json, records the runs in the snapshot's "scale"
// array. The checked-in BENCH_scale.json is produced this way.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"mobiledist/internal/workload"
)

// scalePoint is one population size on the trajectory. Chains == ops keeps
// every op independently in flight, so the standing event population —
// the regime that separates the kernels — scales with the host count
// (several ops per host at every size) while a full pass stays in minutes.
type scalePoint struct {
	n, m, ops int
}

var scalePoints = []scalePoint{
	{n: 10_000, m: 100, ops: 40_000},
	{n: 100_000, m: 1_000, ops: 2_000_000},
	{n: 1_000_000, m: 10_000, ops: 5_000_000},
}

var scaleKinds = []workload.ScaleKind{
	workload.ScaleRoute,
	workload.ScaleChurn,
	workload.ScaleSearchChase,
}

// scaleShards pairs the single-heap kernel with the sharded one; 512 shards
// is past the knee of the shard-count sweep at every trajectory size.
var scaleShards = []int{1, 512}

// runScaleSuite runs every (kind, size, shards) point up to maxN hosts and
// returns the recorded runs in execution order. With reps > 1 each point
// runs that many times and the fastest wall clock is recorded — the
// standard defence against scheduler noise on a shared box (the slow reps
// measure interference, not the kernel).
func runScaleSuite(out io.Writer, seed uint64, maxN, reps int) ([]benchScaleRun, error) {
	if reps < 1 {
		reps = 1
	}
	var runs []benchScaleRun
	for _, kind := range scaleKinds {
		for _, pt := range scalePoints {
			if pt.n > maxN {
				continue
			}
			sc, err := workload.GenScale(workload.ScaleConfig{
				N:      pt.n,
				M:      pt.m,
				Seed:   seed,
				Kind:   kind,
				Ops:    pt.ops,
				Chains: pt.ops,
			})
			if err != nil {
				return nil, err
			}
			// Reps alternate kernels (1, k, 1, k, …) rather than running one
			// kernel's reps back to back, so neither side systematically
			// inherits a heap bloated by the other's dead systems; the
			// explicit GC before each timed run evens out the rest.
			walls := make([]time.Duration, len(scaleShards))
			results := make([]workload.ScaleResult, len(scaleShards))
			for rep := 0; rep < reps; rep++ {
				for i, shards := range scaleShards {
					sys, err := workload.NewScaleSystem(sc, shards)
					if err != nil {
						return nil, err
					}
					runtime.GC()
					start := time.Now()
					r, err := workload.RunScale(sys, sc)
					if err != nil {
						return nil, err
					}
					if w := time.Since(start); rep == 0 || w < walls[i] {
						walls[i], results[i] = w, r
					}
				}
			}
			var base float64
			for i, shards := range scaleShards {
				wall, res := walls[i], results[i]
				run := benchScaleRun{
					Kind:         kind.String(),
					N:            pt.n,
					M:            pt.m,
					Ops:          pt.ops,
					Shards:       shards,
					Millis:       float64(wall) / float64(time.Millisecond),
					Messages:     res.Messages,
					Steps:        res.Steps,
					MsgsPerSec:   float64(res.Messages) / wall.Seconds(),
					EventsPerSec: float64(res.Steps) / wall.Seconds(),
				}
				if shards == scaleShards[0] {
					base = run.MsgsPerSec
				} else if base > 0 {
					run.Speedup = run.MsgsPerSec / base
				}
				runs = append(runs, run)
				line := fmt.Sprintf("scale %-12s N=%-8d M=%-6d shards=%-4d %11.0f msgs/sec %11.0f events/sec %9.0f ms",
					run.Kind, run.N, run.M, run.Shards, run.MsgsPerSec, run.EventsPerSec, run.Millis)
				if run.Speedup != 0 {
					line += fmt.Sprintf("  %.2fx", run.Speedup)
				}
				fmt.Fprintln(out, line)
			}
		}
	}
	return runs, nil
}
